//! The failover-aware directory client.
//!
//! Every node talks to the directory exclusively through a [`DirectoryClient`]: it
//! resolves the current primary of an object's shard from the same deterministic
//! placement + failure view the servers use, and it journals the durable *intent*
//! this node has expressed to the directory — locations it registered, inline objects
//! it published, subscriptions it opened.
//!
//! That journal is what makes the client failover-aware. Replication means a promoted
//! backup already holds everything the old primary had applied; the remaining loss
//! window is the messages that were in flight *to* the dying primary and never entered
//! the replicated log. When the failure detector reports a primary death,
//! [`DirectoryClient::on_peer_failed`] returns exactly the state to re-drive at the
//! new primary: registrations and subscriptions for the failed-over shards (the node
//! facade re-sends them, and `node/failure.rs` re-issues outstanding location
//! queries). All three re-drives are idempotent at the shard.

use std::collections::{HashMap, HashSet};

use crate::buffer::Payload;
use crate::config::HopliteConfig;
use crate::object::{NodeId, ObjectId, ObjectStatus};
use crate::protocol::Message;

use super::service::DirectoryPlacement;

/// The journaled intent of one registration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Registration {
    /// Last status this node registered for the object.
    pub status: ObjectStatus,
    /// Object size as registered.
    pub size: u64,
    /// Whether the object went through the inline (small-object) fast path, in which
    /// case a re-drive must re-ship the payload, not just the location.
    pub inline: bool,
}

/// State to re-drive at the new primaries after a failover, computed by
/// [`DirectoryClient::on_peer_failed`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FailoverRedrive {
    /// Shards whose primary changed with this failure.
    pub changed_shards: Vec<usize>,
    /// Registrations to re-send (this node's journaled locations in those shards).
    pub reregister: Vec<(ObjectId, Registration)>,
    /// Subscriptions to re-open in those shards.
    pub resubscribe: Vec<ObjectId>,
}

/// Per-node client of the replicated directory service.
#[derive(Debug)]
pub struct DirectoryClient {
    me: NodeId,
    placement: DirectoryPlacement,
    failed: HashSet<NodeId>,
    registrations: HashMap<ObjectId, Registration>,
    subscriptions: HashSet<ObjectId>,
}

impl DirectoryClient {
    /// Create the client for node `me`.
    pub fn new(me: NodeId, cfg: &HopliteConfig, nodes: &[NodeId]) -> Self {
        DirectoryClient {
            me,
            placement: DirectoryPlacement::from_config(cfg, nodes),
            failed: HashSet::new(),
            registrations: HashMap::new(),
            subscriptions: HashSet::new(),
        }
    }

    /// The shard responsible for `object`.
    pub fn shard_of(&self, object: ObjectId) -> usize {
        self.placement.shard_of(object)
    }

    /// The current primary for `object`'s shard in this client's failure view;
    /// `None` once every replica of the shard is dead.
    pub fn primary_for(&self, object: ObjectId) -> Option<NodeId> {
        self.placement.primary_for(object, &self.failed)
    }

    /// Number of open subscriptions (GC tests).
    pub fn subscription_count(&self) -> usize {
        self.subscriptions.len()
    }

    fn to_primary(&self, object: ObjectId, msg: Message) -> Option<(NodeId, Message)> {
        self.primary_for(object).map(|primary| (primary, msg))
    }

    /// Register (or refresh) this node as a location of `object`.
    pub fn register(
        &mut self,
        object: ObjectId,
        status: ObjectStatus,
        size: u64,
    ) -> Option<(NodeId, Message)> {
        self.registrations.insert(object, Registration { status, size, inline: false });
        self.to_primary(object, Message::DirRegister { object, holder: self.me, status, size })
    }

    /// Publish a small object through the inline fast path.
    pub fn put_inline(&mut self, object: ObjectId, payload: Payload) -> Option<(NodeId, Message)> {
        self.registrations.insert(
            object,
            Registration { status: ObjectStatus::Complete, size: payload.len(), inline: true },
        );
        self.to_primary(object, Message::DirPutInline { object, holder: self.me, payload })
    }

    /// Withdraw this node's location for `object`.
    pub fn unregister(&mut self, object: ObjectId) -> Option<(NodeId, Message)> {
        self.registrations.remove(&object);
        self.to_primary(object, Message::DirUnregister { object, holder: self.me })
    }

    /// Issue a synchronous location query.
    pub fn query(
        &mut self,
        object: ObjectId,
        query_id: u64,
        exclude: Vec<NodeId>,
    ) -> Option<(NodeId, Message)> {
        self.to_primary(object, Message::DirQuery { object, requester: self.me, query_id, exclude })
    }

    /// Open a location subscription.
    pub fn subscribe(&mut self, object: ObjectId) -> Option<(NodeId, Message)> {
        self.subscriptions.insert(object);
        self.to_primary(object, Message::DirSubscribe { object, subscriber: self.me })
    }

    /// Close a location subscription.
    pub fn unsubscribe(&mut self, object: ObjectId) -> Option<(NodeId, Message)> {
        self.subscriptions.remove(&object);
        self.to_primary(object, Message::DirUnsubscribe { object, subscriber: self.me })
    }

    /// Report a finished transfer so the sender's lease is released.
    pub fn transfer_done(&mut self, object: ObjectId, sender: NodeId) -> Option<(NodeId, Message)> {
        self.to_primary(object, Message::DirTransferDone { object, receiver: self.me, sender })
    }

    /// Delete every copy of `object` cluster-wide.
    pub fn delete(&mut self, object: ObjectId) -> Option<(NodeId, Message)> {
        self.registrations.remove(&object);
        self.subscriptions.remove(&object);
        self.to_primary(object, Message::DirDelete { object })
    }

    /// The local copy of `object` is gone (delete fan-out or eviction): drop the
    /// journaled registration so a failover does not resurrect it.
    pub fn forget(&mut self, object: ObjectId) {
        self.registrations.remove(&object);
    }

    /// Digest a peer failure: fold it into the failure view and return the state to
    /// re-drive at shards whose primary just changed.
    pub fn on_peer_failed(&mut self, peer: NodeId) -> FailoverRedrive {
        if !self.failed.insert(peer) {
            return FailoverRedrive::default();
        }
        let mut before = self.failed.clone();
        before.remove(&peer);
        let changed_shards: Vec<usize> = (0..self.placement.num_shards())
            .filter(|&s| {
                self.placement.primary(s, &before) == Some(peer)
                    && self.placement.primary(s, &self.failed).is_some()
            })
            .collect();
        if changed_shards.is_empty() {
            return FailoverRedrive { changed_shards, ..FailoverRedrive::default() };
        }
        let in_changed = |o: &ObjectId| changed_shards.contains(&self.placement.shard_of(*o));
        let reregister = self
            .registrations
            .iter()
            .filter(|(o, _)| in_changed(o))
            .map(|(o, r)| (*o, *r))
            .collect();
        let resubscribe = self.subscriptions.iter().filter(|o| in_changed(o)).copied().collect();
        FailoverRedrive { changed_shards, reregister, resubscribe }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn client(n: u32, me: u32) -> DirectoryClient {
        let nodes: Vec<NodeId> = (0..n).map(NodeId).collect();
        DirectoryClient::new(NodeId(me), &HopliteConfig::small_for_tests(), &nodes)
    }

    fn obj_with_primary(c: &DirectoryClient, primary: u32) -> ObjectId {
        (0u64..)
            .map(|k| ObjectId::from_name(&format!("cli-{k}")))
            .find(|&o| c.primary_for(o) == Some(NodeId(primary)))
            .unwrap()
    }

    #[test]
    fn routes_to_the_current_primary() {
        let mut c = client(4, 2);
        let o = obj_with_primary(&c, 1);
        let (to, msg) = c.register(o, ObjectStatus::Complete, 10).unwrap();
        assert_eq!(to, NodeId(1));
        assert!(matches!(msg, Message::DirRegister { .. }));
        // After node 1 dies the same object routes to the next replica (node 2).
        c.on_peer_failed(NodeId(1));
        let (to, _) = c.query(o, 1, vec![]).unwrap();
        assert_eq!(to, NodeId(2));
    }

    #[test]
    fn failover_redrives_journaled_state_for_changed_shards_only() {
        let mut c = client(4, 0);
        let on_dead = obj_with_primary(&c, 3);
        let elsewhere = obj_with_primary(&c, 1);
        c.register(on_dead, ObjectStatus::Complete, 10).unwrap();
        c.register(elsewhere, ObjectStatus::Partial, 20).unwrap();
        c.subscribe(on_dead).unwrap();
        c.subscribe(elsewhere).unwrap();
        let redrive = c.on_peer_failed(NodeId(3));
        assert_eq!(redrive.changed_shards, vec![3]);
        assert_eq!(redrive.reregister.len(), 1);
        assert_eq!(redrive.reregister[0].0, on_dead);
        assert_eq!(redrive.resubscribe, vec![on_dead]);
        // A repeated notification is a no-op.
        assert_eq!(c.on_peer_failed(NodeId(3)), FailoverRedrive::default());
    }

    #[test]
    fn forgotten_and_deleted_objects_are_not_redriven() {
        let mut c = client(3, 0);
        let a = obj_with_primary(&c, 2);
        c.put_inline(a, Payload::zeros(16)).unwrap();
        c.forget(a);
        let redrive = c.on_peer_failed(NodeId(2));
        assert!(redrive.reregister.is_empty());
    }

    #[test]
    fn exhausted_replica_set_yields_no_target() {
        let mut c = client(2, 0);
        let o = obj_with_primary(&c, 1);
        c.on_peer_failed(NodeId(1));
        // replication = 2 on a 2-node cluster: replicas are nodes 1 and 0.
        assert_eq!(c.primary_for(o), Some(NodeId(0)));
        c.on_peer_failed(NodeId(0));
        assert_eq!(c.primary_for(o), None);
        assert!(c.query(o, 9, vec![]).is_none());
    }
}
