//! The failover-aware directory client.
//!
//! Every node talks to the directory exclusively through a [`DirectoryClient`]: it
//! resolves the current primary of an object's shard from the same epoch-versioned
//! [`PlacementView`] the servers use, and it journals the durable *intent* this node
//! has expressed to the directory — locations it registered, inline objects it
//! published, subscriptions it opened.
//!
//! With the acked replication log, the journal tracks **confirmation**: the primary
//! sends a [`Message::DirConfirm`] once an op's log entry has been acked by every
//! tracked backup, at which point the op is durable *inside* the replication layer —
//! a promoted backup is guaranteed to hold it. The loss window that remains is ops
//! still in flight to (or unconfirmed at) a dying primary, so
//! [`DirectoryClient::on_peer_failed`] re-drives exactly that genuinely-unacked
//! window at the new primary, instead of the full journal. All re-drives are
//! idempotent at the shard.

use std::collections::HashMap;

use crate::buffer::Payload;
use crate::config::HopliteConfig;
use crate::object::{NodeId, ObjectId, ObjectStatus};
use crate::protocol::{ConfirmKind, Message};

use super::service::{DirectoryPlacement, PlacementView};

/// The journaled intent of one registration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Registration {
    /// Last status this node registered for the object.
    pub status: ObjectStatus,
    /// Object size as registered.
    pub size: u64,
    /// Whether the object went through the inline (small-object) fast path, in which
    /// case a re-drive must re-ship the payload, not just the location.
    pub inline: bool,
    /// Whether the primary confirmed the registration as replication-durable
    /// ([`Message::DirConfirm`]); confirmed entries are excluded from failover
    /// re-drive.
    pub confirmed: bool,
}

/// State to re-drive at the new primaries after a failover, computed by
/// [`DirectoryClient::on_peer_failed`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FailoverRedrive {
    /// Shards whose primary changed with this failure.
    pub changed_shards: Vec<usize>,
    /// Unconfirmed registrations to re-send (the genuinely-unacked window).
    pub reregister: Vec<(ObjectId, Registration)>,
    /// Unconfirmed subscriptions to re-open in those shards.
    pub resubscribe: Vec<ObjectId>,
}

/// Per-node client of the replicated directory service.
#[derive(Debug)]
pub struct DirectoryClient {
    me: NodeId,
    view: PlacementView,
    registrations: HashMap<ObjectId, Registration>,
    /// Open subscriptions, with their confirmation state.
    subscriptions: HashMap<ObjectId, bool>,
}

impl DirectoryClient {
    /// Create the client for node `me`.
    pub fn new(me: NodeId, cfg: &HopliteConfig, nodes: &[NodeId]) -> Self {
        DirectoryClient {
            me,
            view: PlacementView::new(DirectoryPlacement::from_config(cfg, nodes)),
            registrations: HashMap::new(),
            subscriptions: HashMap::new(),
        }
    }

    /// The shard responsible for `object`.
    pub fn shard_of(&self, object: ObjectId) -> usize {
        self.view.placement().shard_of(object)
    }

    /// Every node in the cluster (drivers use this to broadcast announcements).
    pub fn nodes(&self) -> &[NodeId] {
        self.view.placement().nodes()
    }

    /// The current primary for `object`'s shard in this client's failure view;
    /// `None` once every replica of the shard is dead. The believed primary is always
    /// a replica-set member, so a transiently stale answer is corrected by one
    /// server-side forward.
    pub fn primary_for(&self, object: ObjectId) -> Option<NodeId> {
        self.view.primary_for(object)
    }

    /// Number of open subscriptions (GC tests).
    pub fn subscription_count(&self) -> usize {
        self.subscriptions.len()
    }

    /// Number of journaled-but-unconfirmed intents (registrations + subscriptions):
    /// the window a failover would re-drive.
    pub fn unconfirmed_count(&self) -> usize {
        self.registrations.values().filter(|r| !r.confirmed).count()
            + self.subscriptions.values().filter(|c| !**c).count()
    }

    fn to_primary(&self, object: ObjectId, msg: Message) -> Option<(NodeId, Message)> {
        self.primary_for(object).map(|primary| (primary, msg))
    }

    /// Register (or refresh) this node as a location of `object`.
    pub fn register(
        &mut self,
        object: ObjectId,
        status: ObjectStatus,
        size: u64,
    ) -> Option<(NodeId, Message)> {
        self.registrations
            .insert(object, Registration { status, size, inline: false, confirmed: false });
        self.to_primary(object, Message::DirRegister { object, holder: self.me, status, size })
    }

    /// Publish a small object through the inline fast path.
    pub fn put_inline(&mut self, object: ObjectId, payload: Payload) -> Option<(NodeId, Message)> {
        self.registrations.insert(
            object,
            Registration {
                status: ObjectStatus::Complete,
                size: payload.len(),
                inline: true,
                confirmed: false,
            },
        );
        self.to_primary(object, Message::DirPutInline { object, holder: self.me, payload })
    }

    /// Withdraw this node's location for `object`.
    pub fn unregister(&mut self, object: ObjectId) -> Option<(NodeId, Message)> {
        self.registrations.remove(&object);
        self.to_primary(object, Message::DirUnregister { object, holder: self.me })
    }

    /// Issue a synchronous location query.
    pub fn query(
        &mut self,
        object: ObjectId,
        query_id: u64,
        exclude: Vec<NodeId>,
    ) -> Option<(NodeId, Message)> {
        self.to_primary(object, Message::DirQuery { object, requester: self.me, query_id, exclude })
    }

    /// Open a location subscription.
    pub fn subscribe(&mut self, object: ObjectId) -> Option<(NodeId, Message)> {
        self.subscriptions.insert(object, false);
        self.to_primary(object, Message::DirSubscribe { object, subscriber: self.me })
    }

    /// Close a location subscription.
    pub fn unsubscribe(&mut self, object: ObjectId) -> Option<(NodeId, Message)> {
        self.subscriptions.remove(&object);
        self.to_primary(object, Message::DirUnsubscribe { object, subscriber: self.me })
    }

    /// Report a finished transfer so the sender's lease is released.
    pub fn transfer_done(&mut self, object: ObjectId, sender: NodeId) -> Option<(NodeId, Message)> {
        self.to_primary(object, Message::DirTransferDone { object, receiver: self.me, sender })
    }

    /// Delete every copy of `object` cluster-wide.
    pub fn delete(&mut self, object: ObjectId) -> Option<(NodeId, Message)> {
        self.registrations.remove(&object);
        self.subscriptions.remove(&object);
        self.to_primary(object, Message::DirDelete { object })
    }

    /// The local copy of `object` is gone (delete fan-out or eviction): drop the
    /// journaled registration so a failover does not resurrect it.
    pub fn forget(&mut self, object: ObjectId) {
        self.registrations.remove(&object);
    }

    /// Fold a primary's durability confirmation into the journal. The confirm names
    /// what it covers, so an ack for a superseded intent (e.g. a `Partial`
    /// registration later upgraded to `Complete`) does not mark the newer intent
    /// confirmed.
    pub fn confirm(&mut self, object: ObjectId, kind: ConfirmKind) {
        match kind {
            ConfirmKind::Location { status } => {
                if let Some(r) = self.registrations.get_mut(&object) {
                    if !r.inline && r.status == status {
                        r.confirmed = true;
                    }
                }
            }
            ConfirmKind::Inline => {
                if let Some(r) = self.registrations.get_mut(&object) {
                    if r.inline {
                        r.confirmed = true;
                    }
                }
            }
            ConfirmKind::Subscription => {
                if let Some(c) = self.subscriptions.get_mut(&object) {
                    *c = true;
                }
            }
        }
    }

    /// The genuinely-unacked window for `shards`: every journaled-but-unconfirmed
    /// intent whose shard is in the list.
    fn redrive_for(&self, changed_shards: Vec<usize>) -> FailoverRedrive {
        if changed_shards.is_empty() {
            return FailoverRedrive { changed_shards, ..FailoverRedrive::default() };
        }
        let placement = self.view.placement();
        let in_changed = |o: &ObjectId| changed_shards.contains(&placement.shard_of(*o));
        let reregister = self
            .registrations
            .iter()
            .filter(|(o, r)| !r.confirmed && in_changed(o))
            .map(|(o, r)| (*o, *r))
            .collect();
        let resubscribe = self
            .subscriptions
            .iter()
            .filter(|(o, confirmed)| !**confirmed && in_changed(o))
            .map(|(o, _)| *o)
            .collect();
        FailoverRedrive { changed_shards, reregister, resubscribe }
    }

    /// Digest a peer failure: fold it into the leadership view and return the
    /// genuinely-unacked state to re-drive at shards whose primary just changed.
    /// Confirmed entries are already inside the promoted backup's acked prefix and
    /// are not re-sent.
    pub fn on_peer_failed(&mut self, peer: NodeId) -> FailoverRedrive {
        let changed_shards = self.view.on_peer_failed(peer);
        self.redrive_for(changed_shards)
    }

    /// Digest a peer recovery notice (alive again, resyncing — not yet routable-to).
    pub fn on_peer_recovered(&mut self, peer: NodeId) {
        self.view.on_peer_recovered(peer);
    }

    /// Digest direct evidence that a peer restarted (its full-resync snapshot
    /// request arrived) before the failure detector reported anything. If this view
    /// still considered the peer a healthy primary, the implied failure is folded in
    /// — returning the usual failover re-drive set — and the peer then enters the
    /// resyncing state. Idempotent with the detector's later notices.
    pub fn on_peer_restarted(&mut self, peer: NodeId) -> FailoverRedrive {
        let redrive = if self.view.is_alive(peer) && !self.view.is_resyncing(peer) {
            self.on_peer_failed(peer)
        } else {
            FailoverRedrive::default()
        };
        self.view.on_peer_recovered(peer);
        redrive
    }

    /// Digest a peer's catch-up announcement: the peer is a primary candidate again.
    /// Shards that were leaderless while it was out regain a primary with its
    /// re-admission, so their unconfirmed window is re-driven exactly as after a
    /// failover.
    pub fn on_peer_readmitted(&mut self, peer: NodeId) -> FailoverRedrive {
        let regained = self.view.on_peer_readmitted(peer);
        self.redrive_for(regained)
    }

    /// This node restarted: route directory traffic away from itself until resync
    /// completes.
    pub fn begin_self_resync(&mut self) {
        self.view.begin_self_resync(self.me);
    }

    /// This node finished resyncing: it may lead shards again. Shards that were
    /// leaderless and are now led by this node itself get their unconfirmed window
    /// re-driven (to ourselves, via loopback) exactly like any other regained shard.
    pub fn finish_self_resync(&mut self) -> FailoverRedrive {
        let me = self.me;
        self.on_peer_readmitted(me)
    }

    /// Adopt an authoritative rank cursor learned from a resync snapshot, so this
    /// node's own routing agrees with the survivors' (no fail-back to itself).
    pub fn set_shard_rank(&mut self, shard: usize, rank: usize) {
        self.view.set_rank(shard, rank);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn client(n: u32, me: u32) -> DirectoryClient {
        let nodes: Vec<NodeId> = (0..n).map(NodeId).collect();
        DirectoryClient::new(NodeId(me), &HopliteConfig::small_for_tests(), &nodes)
    }

    fn obj_with_primary(c: &DirectoryClient, primary: u32) -> ObjectId {
        (0u64..)
            .map(|k| ObjectId::from_name(&format!("cli-{k}")))
            .find(|&o| c.primary_for(o) == Some(NodeId(primary)))
            .unwrap()
    }

    #[test]
    fn routes_to_the_current_primary() {
        let mut c = client(4, 2);
        let o = obj_with_primary(&c, 1);
        let (to, msg) = c.register(o, ObjectStatus::Complete, 10).unwrap();
        assert_eq!(to, NodeId(1));
        assert!(matches!(msg, Message::DirRegister { .. }));
        // After node 1 dies the same object routes to the next replica (node 2).
        c.on_peer_failed(NodeId(1));
        let (to, _) = c.query(o, 1, vec![]).unwrap();
        assert_eq!(to, NodeId(2));
    }

    #[test]
    fn failover_redrives_journaled_state_for_changed_shards_only() {
        let mut c = client(4, 0);
        let on_dead = obj_with_primary(&c, 3);
        let elsewhere = obj_with_primary(&c, 1);
        c.register(on_dead, ObjectStatus::Complete, 10).unwrap();
        c.register(elsewhere, ObjectStatus::Partial, 20).unwrap();
        c.subscribe(on_dead).unwrap();
        c.subscribe(elsewhere).unwrap();
        let redrive = c.on_peer_failed(NodeId(3));
        assert_eq!(redrive.changed_shards, vec![3]);
        assert_eq!(redrive.reregister.len(), 1);
        assert_eq!(redrive.reregister[0].0, on_dead);
        assert_eq!(redrive.resubscribe, vec![on_dead]);
        // A repeated notification is a no-op.
        assert_eq!(c.on_peer_failed(NodeId(3)), FailoverRedrive::default());
    }

    #[test]
    fn confirmed_intents_shrink_the_redrive_window() {
        let mut c = client(4, 0);
        let confirmed = obj_with_primary(&c, 3);
        let unacked = (0u64..)
            .map(|k| ObjectId::from_name(&format!("win-{k}")))
            .find(|&o| c.primary_for(o) == Some(NodeId(3)) && o != confirmed)
            .unwrap();
        c.register(confirmed, ObjectStatus::Complete, 10).unwrap();
        c.register(unacked, ObjectStatus::Complete, 20).unwrap();
        c.subscribe(confirmed).unwrap();
        assert_eq!(c.unconfirmed_count(), 3);
        c.confirm(confirmed, ConfirmKind::Location { status: ObjectStatus::Complete });
        c.confirm(confirmed, ConfirmKind::Subscription);
        assert_eq!(c.unconfirmed_count(), 1);
        let redrive = c.on_peer_failed(NodeId(3));
        // Only the genuinely-unacked registration is re-driven; the confirmed
        // registration and subscription live in the promoted backup's acked prefix.
        assert_eq!(redrive.reregister.len(), 1);
        assert_eq!(redrive.reregister[0].0, unacked);
        assert!(redrive.resubscribe.is_empty());
    }

    #[test]
    fn stale_confirm_does_not_cover_an_upgraded_registration() {
        let mut c = client(4, 0);
        let o = obj_with_primary(&c, 3);
        c.register(o, ObjectStatus::Partial, 10).unwrap();
        // The registration is upgraded before the Partial confirm arrives.
        c.register(o, ObjectStatus::Complete, 10).unwrap();
        c.confirm(o, ConfirmKind::Location { status: ObjectStatus::Partial });
        let redrive = c.on_peer_failed(NodeId(3));
        assert_eq!(redrive.reregister.len(), 1, "the Complete upgrade is still unacked");
        assert_eq!(redrive.reregister[0].1.status, ObjectStatus::Complete);
    }

    #[test]
    fn forgotten_and_deleted_objects_are_not_redriven() {
        let mut c = client(3, 0);
        let a = obj_with_primary(&c, 2);
        c.put_inline(a, Payload::zeros(16)).unwrap();
        c.forget(a);
        let redrive = c.on_peer_failed(NodeId(2));
        assert!(redrive.reregister.is_empty());
    }

    #[test]
    fn exhausted_replica_set_yields_no_target() {
        let mut c = client(2, 0);
        let o = obj_with_primary(&c, 1);
        c.on_peer_failed(NodeId(1));
        // replication = 2 on a 2-node cluster: replicas are nodes 1 and 0.
        assert_eq!(c.primary_for(o), Some(NodeId(0)));
        c.on_peer_failed(NodeId(0));
        assert_eq!(c.primary_for(o), None);
        assert!(c.query(o, 9, vec![]).is_none());
    }

    #[test]
    fn readmission_redrives_the_unconfirmed_window_of_leaderless_shards() {
        // Shard with replicas [1, 2] (client is node 0, a non-member). Both replicas
        // die, so the client's unconfirmed registration has nowhere to go; when node
        // 1 is readmitted after restarting, the shard regains a primary and the
        // client must re-drive the registration there — the re-admitted replica may
        // have resynced from nothing.
        let mut c = client(3, 0);
        let o = obj_with_primary(&c, 1);
        c.register(o, ObjectStatus::Complete, 10).unwrap();
        let first = c.on_peer_failed(NodeId(1));
        assert_eq!(first.reregister.len(), 1, "failover to node 2 re-drives");
        let second = c.on_peer_failed(NodeId(2));
        // Node 2's death also fails over shard 2 ([2, 0]), but the *leaderless*
        // shard of `o` has no target and is not re-driven.
        assert!(!second.changed_shards.contains(&c.shard_of(o)));
        assert!(second.reregister.is_empty(), "nothing to re-drive at a dead shard");
        assert_eq!(c.primary_for(o), None);
        c.on_peer_recovered(NodeId(1));
        let redrive = c.on_peer_readmitted(NodeId(1));
        assert_eq!(redrive.reregister.len(), 1, "regained shard re-drives the window");
        assert_eq!(redrive.reregister[0].0, o);
        assert_eq!(c.primary_for(o), Some(NodeId(1)));
    }

    #[test]
    fn self_resync_routes_away_until_finished() {
        let mut c = client(3, 0);
        let o = obj_with_primary(&c, 0);
        c.begin_self_resync();
        // While resyncing, ops for shards this node owns go to the backup.
        let (to, _) = c.register(o, ObjectStatus::Complete, 10).unwrap();
        assert_ne!(to, NodeId(0));
        c.finish_self_resync();
        // The cursor did not move, so once re-admitted the node routes to itself
        // again only where the cursor still points at it.
        assert_eq!(c.primary_for(o), Some(NodeId(0)));
    }
}
