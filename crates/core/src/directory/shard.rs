//! One directory shard as a pure state machine (§3.2 of the paper).
//!
//! The directory is a sharded hash table mapping each `ObjectID` to its size and the
//! set of node locations holding a partial or complete copy. This module implements a
//! single shard as a pure, deterministic state machine; the replication layer
//! ([`super::replication`]) wraps it in a replica role, and the service layer
//! ([`super::service`]) routes client operations into the right replica.
//!
//! Determinism matters here: backups replay the primary's op log against their own
//! mirror shard, so applying the same ops in the same order must produce the same
//! state (including lease and pull-edge bookkeeping) on every replica.
//!
//! The shard also implements the two behaviours that make Hoplite's broadcast
//! receiver-driven (§3.4.1):
//!
//! * when answering a location query it *leases* the chosen sender to the requester
//!   (recording an in-flight `receiver -> sender` edge), so each copy serves at most
//!   one receiver at a time and later receivers are spread over earlier ones;
//! * it tracks those edges to refuse assignments that would create cyclic fetch
//!   dependencies after a failure (§3.5.1).
//!
//! Finally, objects at or below the inline threshold are cached in the shard itself
//! and served straight from the query reply (the small-object fast path).

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::ops::Bound::{Excluded, Unbounded};

use crate::buffer::Payload;
use crate::config::HopliteConfig;
use crate::object::{NodeId, ObjectId, ObjectStatus};
use crate::protocol::{Message, QueryResult, ShardSnapshot, SnapshotEntry};

/// One location entry for an object.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Location {
    status: ObjectStatus,
    /// Receiver currently pulling from this holder, if any.
    leased_to: Option<NodeId>,
}

/// A parked synchronous query waiting for a location to appear.
#[derive(Clone, Debug)]
struct PendingQuery {
    requester: NodeId,
    query_id: u64,
    exclude: Vec<NodeId>,
}

/// Directory state for one object.
#[derive(Clone, Debug, Default)]
struct Entry {
    size: Option<u64>,
    locations: HashMap<NodeId, Location>,
    inline: Option<Payload>,
    pending: VecDeque<PendingQuery>,
    subscribers: HashSet<NodeId>,
    /// In-flight pulls: receiver -> sender. Used both for leasing and for cycle
    /// avoidance.
    pulls: HashMap<NodeId, NodeId>,
    deleted: bool,
    /// Inline-cache LRU stamp (0 when no inline payload is cached). Stamps are
    /// assigned from a logical clock driven by replicated ops, so every replica
    /// agrees on recency order and evicts the same victims.
    inline_stamp: u64,
}

/// A lease candidate in the expiry wheel: `(object, holder, receiver)`. Validated
/// lazily at expiry time — candidates whose lease has since resolved are skipped —
/// so the many code paths that clear leases never have to touch the wheel.
type LeaseCandidate = (ObjectId, NodeId, NodeId);

/// One shard of the object directory.
///
/// Entries live in a `BTreeMap` so chunked resync can stream them in bounded,
/// cursor-resumable slices ([`DirectoryShard::snapshot_range`]).
#[derive(Debug)]
pub struct DirectoryShard {
    shard_id: usize,
    cfg: HopliteConfig,
    entries: BTreeMap<ObjectId, Entry>,
    /// Logical clock for inline-cache recency stamps.
    inline_clock: u64,
    /// Recency index: stamp -> object, for every entry with an inline payload.
    inline_lru: BTreeMap<u64, ObjectId>,
    /// Total bytes of inline payloads currently cached.
    inline_bytes: u64,
    /// Inline payloads evicted to stay under `directory_inline_cache_bytes`.
    inline_evictions: u64,
    /// Two-generation lease expiry wheel: candidates age from `current` to `prev`
    /// and are expired (if still leased) on the tick after that, so a lease lives
    /// between one and two TTLs without any per-lease timer.
    lease_wheel_current: Vec<LeaseCandidate>,
    lease_wheel_prev: Vec<LeaseCandidate>,
}

impl DirectoryShard {
    /// Create an empty shard.
    pub fn new(shard_id: usize, cfg: HopliteConfig) -> Self {
        DirectoryShard {
            shard_id,
            cfg,
            entries: BTreeMap::new(),
            inline_clock: 0,
            inline_lru: BTreeMap::new(),
            inline_bytes: 0,
            inline_evictions: 0,
            lease_wheel_current: Vec::new(),
            lease_wheel_prev: Vec::new(),
        }
    }

    /// The shard's configuration.
    pub fn config(&self) -> &HopliteConfig {
        &self.cfg
    }

    /// The shard's index.
    pub fn shard_id(&self) -> usize {
        self.shard_id
    }

    /// Number of objects this shard currently tracks.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the shard tracks no objects.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Known locations of an object (for tests and introspection).
    pub fn locations(&self, object: ObjectId) -> Vec<(NodeId, ObjectStatus)> {
        self.entries
            .get(&object)
            .map(|e| e.locations.iter().map(|(n, l)| (*n, l.status)).collect())
            .unwrap_or_default()
    }

    /// Register a location. Also answers parked queries and publishes to subscribers.
    pub fn register(
        &mut self,
        object: ObjectId,
        holder: NodeId,
        status: ObjectStatus,
        size: u64,
        out: &mut Vec<(NodeId, Message)>,
    ) {
        let entry = self.entries.entry(object).or_default();
        if entry.deleted {
            // The task framework may recreate a deleted object id (lineage
            // reconstruction); a fresh registration revives the entry.
            *entry = Entry::default();
        }
        entry.size = Some(size);
        let loc = entry.locations.entry(holder).or_insert(Location { status, leased_to: None });
        loc.status = status;
        // A holder that finished its copy is no longer pulling from anyone.
        if status.is_complete() {
            if let Some(sender) = entry.pulls.remove(&holder) {
                if let Some(s) = entry.locations.get_mut(&sender) {
                    if s.leased_to == Some(holder) {
                        s.leased_to = None;
                    }
                }
            }
        }
        for sub in entry.subscribers.iter() {
            out.push((*sub, Message::DirPublish { object, holder, status, size }));
        }
        self.drain_pending(object, out);
    }

    /// Cache a small object inline (§3.2 fast path) and answer parked queries. The
    /// inline cache is bounded: when `directory_inline_cache_bytes` is exceeded the
    /// least-recently-used payloads are dropped (their location records stay).
    pub fn put_inline(
        &mut self,
        object: ObjectId,
        holder: NodeId,
        payload: Payload,
        out: &mut Vec<(NodeId, Message)>,
    ) {
        let size = payload.len();
        let entry = self.entries.entry(object).or_default();
        if entry.deleted {
            *entry = Entry::default();
        }
        entry.size = Some(size);
        let old_len = entry.inline.as_ref().map(|p| p.len()).unwrap_or(0);
        let old_stamp = entry.inline_stamp;
        entry.inline = Some(payload);
        entry
            .locations
            .insert(holder, Location { status: ObjectStatus::Complete, leased_to: None });
        for sub in entry.subscribers.iter() {
            out.push((
                *sub,
                Message::DirPublish { object, holder, status: ObjectStatus::Complete, size },
            ));
        }
        if old_stamp != 0 {
            self.inline_lru.remove(&old_stamp);
            self.inline_bytes -= old_len;
        }
        self.inline_clock += 1;
        let stamp = self.inline_clock;
        self.entries.get_mut(&object).expect("entry just inserted").inline_stamp = stamp;
        self.inline_lru.insert(stamp, object);
        self.inline_bytes += size;
        self.enforce_inline_budget();
        self.drain_pending(object, out);
    }

    /// Evict least-recently-used inline payloads until the cache fits its budget.
    /// An entry whose inline payload is the only complete copy of the object is
    /// never evicted (dropping it would lose the last copy); such entries are
    /// skipped and the budget may be exceeded until a pull-servable copy appears.
    fn enforce_inline_budget(&mut self) {
        let budget = self.cfg.directory_inline_cache_bytes;
        let mut cursor = 0u64;
        while self.inline_bytes > budget {
            let Some((&stamp, &object)) =
                self.inline_lru.range((Excluded(cursor), Unbounded)).next()
            else {
                break;
            };
            cursor = stamp;
            let entry = self.entries.get_mut(&object).expect("LRU index tracks live entries");
            if !entry.locations.values().any(|l| l.status.is_complete()) {
                continue;
            }
            let len = entry.inline.as_ref().map(|p| p.len()).unwrap_or(0);
            entry.inline = None;
            entry.inline_stamp = 0;
            self.inline_lru.remove(&stamp);
            self.inline_bytes -= len;
            self.inline_evictions += 1;
        }
    }

    /// Refresh an entry's inline recency stamp (called on inline query hits, which
    /// are replicated ops — so every replica refreshes identically).
    fn touch_inline(&mut self, object: ObjectId) {
        let Some(old) = self.entries.get(&object).map(|e| e.inline_stamp) else { return };
        if old == 0 {
            return;
        }
        self.inline_clock += 1;
        let stamp = self.inline_clock;
        self.inline_lru.remove(&old);
        self.inline_lru.insert(stamp, object);
        self.entries.get_mut(&object).expect("entry just read").inline_stamp = stamp;
    }

    /// Bytes of inline payloads currently cached (introspection and benches).
    pub fn inline_bytes(&self) -> u64 {
        self.inline_bytes
    }

    /// Drain the count of inline payloads evicted since the last call.
    pub fn take_inline_evictions(&mut self) -> u64 {
        std::mem::take(&mut self.inline_evictions)
    }

    /// Remove one holder's location (local eviction or an explicit unregister).
    pub fn unregister(&mut self, object: ObjectId, holder: NodeId) {
        if let Some(entry) = self.entries.get_mut(&object) {
            entry.locations.remove(&holder);
            // Any lease the holder was granting disappears with it.
            let receivers: Vec<NodeId> =
                entry.pulls.iter().filter_map(|(r, s)| (*s == holder).then_some(*r)).collect();
            for r in receivers {
                entry.pulls.remove(&r);
            }
        }
    }

    /// Handle a synchronous location query. Replies immediately when possible,
    /// otherwise parks the query until a usable location is registered.
    ///
    /// A fresh query supersedes whatever assignment the requester held before: its
    /// previous pull edge and the matching lease are released (the requester only
    /// re-queries after abandoning that pull, §3.5.1), and a parked duplicate with the
    /// same correlation id is replaced rather than queued twice — which makes the
    /// failover-aware client's re-issued queries idempotent.
    pub fn query(
        &mut self,
        object: ObjectId,
        requester: NodeId,
        query_id: u64,
        exclude: Vec<NodeId>,
        out: &mut Vec<(NodeId, Message)>,
    ) {
        let entry = self.entries.entry(object).or_default();
        if entry.deleted {
            out.push((
                requester,
                Message::DirQueryReply { object, query_id, result: QueryResult::Deleted },
            ));
            return;
        }
        if let Some(old_sender) = entry.pulls.remove(&requester) {
            if let Some(loc) = entry.locations.get_mut(&old_sender) {
                if loc.leased_to == Some(requester) {
                    loc.leased_to = None;
                }
            }
        }
        entry.pending.retain(|p| !(p.requester == requester && p.query_id == query_id));
        entry.pending.push_back(PendingQuery { requester, query_id, exclude });
        self.drain_pending(object, out);
    }

    /// Subscribe to location publications; current locations are published right away.
    pub fn subscribe(
        &mut self,
        object: ObjectId,
        subscriber: NodeId,
        out: &mut Vec<(NodeId, Message)>,
    ) {
        let entry = self.entries.entry(object).or_default();
        entry.subscribers.insert(subscriber);
        let size = entry.size.unwrap_or(0);
        for (holder, loc) in entry.locations.iter() {
            out.push((
                subscriber,
                Message::DirPublish { object, holder: *holder, status: loc.status, size },
            ));
        }
    }

    /// Drop a subscription (the asynchronous counterpart of a query timeout; reduce
    /// coordinators unsubscribe when their reduce completes).
    pub fn unsubscribe(&mut self, object: ObjectId, subscriber: NodeId) {
        if let Some(entry) = self.entries.get_mut(&object) {
            entry.subscribers.remove(&subscriber);
        }
    }

    /// Number of subscribers of an object (introspection for GC tests).
    pub fn subscriber_count(&self, object: ObjectId) -> usize {
        self.entries.get(&object).map(|e| e.subscribers.len()).unwrap_or(0)
    }

    /// A receiver finished copying from `sender`: clear the lease edge so the sender is
    /// available to other receivers again (§3.4.1 "adds the sender's location back").
    pub fn transfer_done(&mut self, object: ObjectId, receiver: NodeId, sender: NodeId) {
        if let Some(entry) = self.entries.get_mut(&object) {
            if entry.pulls.get(&receiver) == Some(&sender) {
                entry.pulls.remove(&receiver);
            }
            if let Some(loc) = entry.locations.get_mut(&sender) {
                if loc.leased_to == Some(receiver) {
                    loc.leased_to = None;
                }
            }
        }
    }

    /// Delete an object: answer parked queries with `Deleted`, tell every holder to
    /// drop its copy, and tombstone the entry.
    pub fn delete(&mut self, object: ObjectId, out: &mut Vec<(NodeId, Message)>) {
        let entry = self.entries.entry(object).or_default();
        entry.deleted = true;
        let old_len = entry.inline.as_ref().map(|p| p.len()).unwrap_or(0);
        let old_stamp = std::mem::take(&mut entry.inline_stamp);
        entry.inline = None;
        for pending in entry.pending.drain(..) {
            out.push((
                pending.requester,
                Message::DirQueryReply {
                    object,
                    query_id: pending.query_id,
                    result: QueryResult::Deleted,
                },
            ));
        }
        for holder in entry.locations.keys() {
            out.push((*holder, Message::StoreRelease { object }));
        }
        entry.locations.clear();
        entry.pulls.clear();
        entry.subscribers.clear();
        if old_stamp != 0 {
            self.inline_lru.remove(&old_stamp);
            self.inline_bytes -= old_len;
        }
    }

    /// Purge all state belonging to a failed node: its locations, leases, parked
    /// queries and subscriptions (§3.5).
    pub fn node_failed(&mut self, node: NodeId) {
        for entry in self.entries.values_mut() {
            entry.locations.remove(&node);
            entry.subscribers.remove(&node);
            entry.pending.retain(|p| p.requester != node);
            // Clear pull edges in either direction.
            entry.pulls.retain(|receiver, sender| *receiver != node && *sender != node);
            for loc in entry.locations.values_mut() {
                if loc.leased_to == Some(node) {
                    loc.leased_to = None;
                }
            }
        }
    }

    /// Serialize one entry (sorted inner collections, so snapshots of identical
    /// shards compare equal — parked queries keep their arrival order, which is part
    /// of the shard's semantics).
    fn entry_snapshot(object: ObjectId, e: &Entry) -> SnapshotEntry {
        let mut locations: Vec<(NodeId, ObjectStatus, Option<NodeId>)> =
            e.locations.iter().map(|(n, l)| (*n, l.status, l.leased_to)).collect();
        locations.sort_by_key(|(n, _, _)| n.0);
        let mut subscribers: Vec<NodeId> = e.subscribers.iter().copied().collect();
        subscribers.sort_by_key(|n| n.0);
        let mut pulls: Vec<(NodeId, NodeId)> = e.pulls.iter().map(|(r, s)| (*r, *s)).collect();
        pulls.sort_by_key(|(r, _)| r.0);
        SnapshotEntry {
            object,
            size: e.size,
            locations,
            inline: e.inline.clone(),
            pending: e
                .pending
                .iter()
                .map(|p| (p.requester, p.query_id, p.exclude.clone()))
                .collect(),
            subscribers,
            pulls,
            deleted: e.deleted,
            inline_stamp: e.inline_stamp,
        }
    }

    /// Capture the full shard state for transfer to a recovering replica (§3.5 state
    /// transfer). Entries come out sorted by object id (the map is ordered).
    pub fn snapshot(&self) -> ShardSnapshot {
        ShardSnapshot {
            entries: self.entries.iter().map(|(o, e)| Self::entry_snapshot(*o, e)).collect(),
        }
    }

    /// One bounded, cursor-resumable slice of the shard for chunked resync: entries
    /// strictly after `after` (or from the start when `None`), accumulated until the
    /// next entry would push the slice past `max_bytes`. Always returns at least one
    /// entry when any remain — a single entry larger than the budget is shipped
    /// alone. The second element is `true` when the shard is exhausted.
    pub fn snapshot_range(
        &self,
        after: Option<ObjectId>,
        max_bytes: u64,
    ) -> (Vec<SnapshotEntry>, bool) {
        let lower = match after {
            Some(o) => Excluded(o),
            None => Unbounded,
        };
        let mut out: Vec<SnapshotEntry> = Vec::new();
        let mut bytes = 0u64;
        for (object, entry) in self.entries.range((lower, Unbounded)) {
            let se = Self::entry_snapshot(*object, entry);
            let sz = se.wire_size();
            if !out.is_empty() && bytes + sz > max_bytes {
                return (out, false);
            }
            bytes += sz;
            out.push(se);
        }
        (out, true)
    }

    /// Serialize the entries for a specific set of objects (the resync source uses
    /// this to re-ship entries mutated behind a stream's cursor). Unknown ids are
    /// skipped — entries are never removed, only tombstoned, so an id the source
    /// does not know was never shipped either.
    pub fn snapshot_entries_for<I: IntoIterator<Item = ObjectId>>(
        &self,
        ids: I,
    ) -> Vec<SnapshotEntry> {
        ids.into_iter()
            .filter_map(|o| self.entries.get(&o).map(|e| Self::entry_snapshot(o, e)))
            .collect()
    }

    /// Drop all shard state (the first chunk of a fresh resync stream starts from a
    /// clean slate). The inline clock and eviction counter survive — the clock must
    /// stay monotonic across re-baselines.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.inline_lru.clear();
        self.inline_bytes = 0;
        self.lease_wheel_current.clear();
        self.lease_wheel_prev.clear();
    }

    /// Install (upsert) a slice of snapshot entries, maintaining the inline-cache
    /// accounting and re-arming lease candidates. Used both by whole-snapshot
    /// restore and by incremental chunk installation.
    pub fn install_entries(&mut self, entries: &[SnapshotEntry]) {
        for se in entries {
            if let Some(old) = self.entries.get(&se.object) {
                if old.inline_stamp != 0 {
                    self.inline_lru.remove(&old.inline_stamp);
                    self.inline_bytes -= old.inline.as_ref().map(|p| p.len()).unwrap_or(0);
                }
            }
            let mut stamp = if se.inline.is_some() { se.inline_stamp } else { 0 };
            if se.inline.is_some() && (stamp == 0 || self.inline_lru.contains_key(&stamp)) {
                // Defensive: stamps are unique per source, but a resumed stream may
                // mix sources; collisions get a fresh stamp instead of corrupting
                // the index.
                self.inline_clock += 1;
                stamp = self.inline_clock;
            }
            let entry = Entry {
                size: se.size,
                locations: se
                    .locations
                    .iter()
                    .map(|(n, status, leased_to)| {
                        (*n, Location { status: *status, leased_to: *leased_to })
                    })
                    .collect(),
                inline: se.inline.clone(),
                pending: se
                    .pending
                    .iter()
                    .map(|(requester, query_id, exclude)| PendingQuery {
                        requester: *requester,
                        query_id: *query_id,
                        exclude: exclude.clone(),
                    })
                    .collect(),
                subscribers: se.subscribers.iter().copied().collect(),
                pulls: se.pulls.iter().copied().collect(),
                deleted: se.deleted,
                inline_stamp: stamp,
            };
            if let Some(p) = &se.inline {
                self.inline_bytes += p.len();
                self.inline_lru.insert(stamp, se.object);
                self.inline_clock = self.inline_clock.max(stamp);
            }
            for (holder, _, leased_to) in &se.locations {
                if let Some(receiver) = leased_to {
                    self.lease_wheel_current.push((se.object, *holder, *receiver));
                }
            }
            self.entries.insert(se.object, entry);
        }
        self.enforce_inline_budget();
    }

    /// Replace this shard's state with a snapshot captured by the current primary.
    /// Whatever the shard held before — including a deposed primary's unacked suffix —
    /// is discarded wholesale; the snapshot is the authoritative acked prefix.
    pub fn restore(&mut self, snapshot: &ShardSnapshot) {
        self.clear();
        self.install_entries(&snapshot.entries);
    }

    /// Advance the lease expiry wheel one generation: candidates that aged through a
    /// full generation and are *still* leased are reclaimed (lease + pull edge
    /// cleared) and their parked queries re-drained. Returns the number of leases
    /// expired. Runs locally on every replica — leases are not replicated state
    /// transitions, so replicas may transiently disagree; each one's own wheel
    /// clears its stale leases within two ticks.
    pub fn expire_stale_leases(&mut self, out: &mut Vec<(NodeId, Message)>) -> u64 {
        let due = std::mem::take(&mut self.lease_wheel_prev);
        self.lease_wheel_prev = std::mem::take(&mut self.lease_wheel_current);
        let mut expired = 0u64;
        let mut affected: Vec<ObjectId> = Vec::new();
        for (object, holder, receiver) in due {
            let Some(entry) = self.entries.get_mut(&object) else { continue };
            let Some(loc) = entry.locations.get_mut(&holder) else { continue };
            if loc.leased_to != Some(receiver) {
                continue; // resolved (or re-leased) since: stale candidate
            }
            loc.leased_to = None;
            if entry.pulls.get(&receiver) == Some(&holder) {
                entry.pulls.remove(&receiver);
            }
            expired += 1;
            affected.push(object);
        }
        for object in affected {
            self.drain_pending(object, out);
        }
        expired
    }

    /// Whether the expiry wheel still holds candidates (drives lazy re-arming of
    /// the expiry timer; an over-approximation — stale candidates count too, but
    /// they drain within two ticks).
    pub fn has_lease_candidates(&self) -> bool {
        !self.lease_wheel_current.is_empty() || !self.lease_wheel_prev.is_empty()
    }

    /// Answer as many parked queries for `object` as possible.
    fn drain_pending(&mut self, object: ObjectId, out: &mut Vec<(NodeId, Message)>) {
        let Some(entry) = self.entries.get_mut(&object) else { return };
        let mut still_waiting = VecDeque::new();
        let mut inline_hit = false;
        while let Some(q) = entry.pending.pop_front() {
            if let Some(reply) =
                Self::try_answer(&self.cfg, object, entry, &q, &mut self.lease_wheel_current)
            {
                inline_hit |= matches!(
                    &reply,
                    Message::DirQueryReply { result: QueryResult::Inline { .. }, .. }
                );
                out.push((q.requester, reply));
            } else {
                still_waiting.push_back(q);
            }
        }
        entry.pending = still_waiting;
        if inline_hit {
            self.touch_inline(object);
        }
    }

    /// Try to answer a single query against the current entry state.
    fn try_answer(
        cfg: &HopliteConfig,
        object: ObjectId,
        entry: &mut Entry,
        q: &PendingQuery,
        lease_wheel: &mut Vec<LeaseCandidate>,
    ) -> Option<Message> {
        // Fast path: inline cache.
        if let Some(payload) = &entry.inline {
            if payload.len() <= cfg.inline_threshold {
                return Some(Message::DirQueryReply {
                    object,
                    query_id: q.query_id,
                    result: QueryResult::Inline { payload: payload.clone() },
                });
            }
        }
        let size = entry.size?;
        // Candidate senders: not the requester, not excluded, not already leased, and
        // not (transitively) depending on the requester.
        let mut candidates: Vec<(NodeId, ObjectStatus)> = entry
            .locations
            .iter()
            .filter(|(holder, loc)| {
                **holder != q.requester
                    && !q.exclude.contains(holder)
                    && loc.leased_to.is_none()
                    && !Self::depends_on(entry, **holder, q.requester)
            })
            .map(|(holder, loc)| (*holder, loc.status))
            .collect();
        if candidates.is_empty() {
            return None;
        }
        // Prefer complete copies; break ties deterministically by node id so simulated
        // runs are reproducible.
        candidates.sort_by_key(|(node, status)| (!status.is_complete(), node.0));
        let (holder, status) = candidates[0];
        // Lease the chosen sender to the requester and record the pull edge; the
        // requester will immediately register itself as a partial location (§3.4.1).
        if let Some(loc) = entry.locations.get_mut(&holder) {
            loc.leased_to = Some(q.requester);
        }
        entry.pulls.insert(q.requester, holder);
        lease_wheel.push((object, holder, q.requester));
        Some(Message::DirQueryReply {
            object,
            query_id: q.query_id,
            result: QueryResult::Location { node: holder, status, size },
        })
    }

    /// `true` if `node` transitively pulls from `target` (so assigning `node` as a
    /// sender for `target` would create a cycle).
    fn depends_on(entry: &Entry, node: NodeId, target: NodeId) -> bool {
        let mut cur = node;
        let mut hops = 0;
        while let Some(&sender) = entry.pulls.get(&cur) {
            if sender == target {
                return true;
            }
            cur = sender;
            hops += 1;
            if hops > entry.pulls.len() {
                // Defensive: a cycle in the edge map itself (should not happen).
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard() -> DirectoryShard {
        DirectoryShard::new(0, HopliteConfig { inline_threshold: 64, ..HopliteConfig::default() })
    }

    fn obj(name: &str) -> ObjectId {
        ObjectId::from_name(name)
    }

    fn query_reply(out: &[(NodeId, Message)]) -> Vec<(NodeId, QueryResult)> {
        out.iter()
            .filter_map(|(to, m)| match m {
                Message::DirQueryReply { result, .. } => Some((*to, result.clone())),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn query_waits_until_location_registered() {
        let mut s = shard();
        let mut out = Vec::new();
        s.query(obj("x"), NodeId(2), 1, vec![], &mut out);
        assert!(query_reply(&out).is_empty(), "no location yet, query parks");
        s.register(obj("x"), NodeId(0), ObjectStatus::Partial, 1 << 20, &mut out);
        let replies = query_reply(&out);
        assert_eq!(replies.len(), 1);
        match &replies[0].1 {
            QueryResult::Location { node, status, size } => {
                assert_eq!(*node, NodeId(0));
                assert_eq!(*status, ObjectStatus::Partial);
                assert_eq!(*size, 1 << 20);
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }

    #[test]
    fn complete_copies_are_preferred() {
        let mut s = shard();
        let mut out = Vec::new();
        s.register(obj("x"), NodeId(5), ObjectStatus::Partial, 100, &mut out);
        s.register(obj("x"), NodeId(3), ObjectStatus::Complete, 100, &mut out);
        out.clear();
        s.query(obj("x"), NodeId(9), 7, vec![], &mut out);
        match &query_reply(&out)[0].1 {
            QueryResult::Location { node, .. } => assert_eq!(*node, NodeId(3)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn leased_sender_is_not_reused() {
        // Figure 4: S sends to R1; when R2 arrives, S is busy so R2 is pointed at R1's
        // partial copy.
        let mut s = shard();
        let mut out = Vec::new();
        s.register(obj("x"), NodeId(0), ObjectStatus::Complete, 100, &mut out);
        out.clear();
        s.query(obj("x"), NodeId(1), 1, vec![], &mut out); // R1 takes S
        out.clear();
        // R1 registers itself as a partial location as soon as it starts pulling.
        s.register(obj("x"), NodeId(1), ObjectStatus::Partial, 100, &mut out);
        out.clear();
        s.query(obj("x"), NodeId(2), 2, vec![], &mut out); // R2 must get R1
        match &query_reply(&out)[0].1 {
            QueryResult::Location { node, status, .. } => {
                assert_eq!(*node, NodeId(1));
                assert_eq!(*status, ObjectStatus::Partial);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn transfer_done_releases_the_lease() {
        let mut s = shard();
        let mut out = Vec::new();
        s.register(obj("x"), NodeId(0), ObjectStatus::Complete, 100, &mut out);
        s.query(obj("x"), NodeId(1), 1, vec![], &mut out);
        out.clear();
        // While R1 still pulls from S, a third receiver parks (R1 hasn't registered).
        s.query(obj("x"), NodeId(2), 2, vec![], &mut out);
        assert!(query_reply(&out).is_empty());
        s.transfer_done(obj("x"), NodeId(1), NodeId(0));
        s.register(obj("x"), NodeId(1), ObjectStatus::Complete, 100, &mut out);
        let replies = query_reply(&out);
        assert_eq!(replies.len(), 1, "parked query answered once the lease clears");
    }

    #[test]
    fn cyclic_dependencies_are_refused() {
        // R1 pulls from S. S fails. R1 re-queries excluding S; the only other location
        // is R2 which is pulling from R1 — the shard must not return R2 to R1.
        let mut s = shard();
        let mut out = Vec::new();
        s.register(obj("x"), NodeId(0), ObjectStatus::Complete, 100, &mut out);
        s.query(obj("x"), NodeId(1), 1, vec![], &mut out); // R1 <- S
        s.register(obj("x"), NodeId(1), ObjectStatus::Partial, 100, &mut out);
        s.query(obj("x"), NodeId(2), 2, vec![], &mut out); // R2 <- R1
        s.register(obj("x"), NodeId(2), ObjectStatus::Partial, 100, &mut out);
        out.clear();
        s.node_failed(NodeId(0));
        s.query(obj("x"), NodeId(1), 3, vec![NodeId(0)], &mut out);
        assert!(
            query_reply(&out).is_empty(),
            "R2 depends on R1, so R1's re-query must park instead of creating a cycle"
        );
        // Once R2 finishes (complete copy, no longer pulling), R1 can fetch from it —
        // this is exactly Figure 4(c')/(d') with roles swapped.
        s.register(obj("x"), NodeId(2), ObjectStatus::Complete, 100, &mut out);
        let replies = query_reply(&out);
        assert_eq!(replies.len(), 1);
        match &replies[0].1 {
            QueryResult::Location { node, .. } => assert_eq!(*node, NodeId(2)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn inline_objects_served_from_cache() {
        let mut s = shard();
        let mut out = Vec::new();
        s.put_inline(obj("small"), NodeId(0), Payload::from_vec(vec![7; 32]), &mut out);
        out.clear();
        s.query(obj("small"), NodeId(4), 11, vec![], &mut out);
        match &query_reply(&out)[0].1 {
            QueryResult::Inline { payload } => assert_eq!(payload.len(), 32),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn subscribe_publishes_current_and_future_locations() {
        let mut s = shard();
        let mut out = Vec::new();
        s.register(obj("x"), NodeId(0), ObjectStatus::Partial, 10, &mut out);
        out.clear();
        s.subscribe(obj("x"), NodeId(8), &mut out);
        assert_eq!(out.len(), 1, "existing location published immediately");
        out.clear();
        s.register(obj("x"), NodeId(1), ObjectStatus::Complete, 10, &mut out);
        assert!(out
            .iter()
            .any(|(to, m)| *to == NodeId(8) && matches!(m, Message::DirPublish { .. })));
    }

    #[test]
    fn delete_tombstones_and_notifies_holders() {
        let mut s = shard();
        let mut out = Vec::new();
        s.register(obj("x"), NodeId(0), ObjectStatus::Complete, 10, &mut out);
        s.register(obj("x"), NodeId(1), ObjectStatus::Complete, 10, &mut out);
        out.clear();
        s.delete(obj("x"), &mut out);
        let releases: Vec<NodeId> = out
            .iter()
            .filter_map(|(to, m)| matches!(m, Message::StoreRelease { .. }).then_some(*to))
            .collect();
        assert_eq!(releases.len(), 2);
        out.clear();
        s.query(obj("x"), NodeId(5), 9, vec![], &mut out);
        assert!(matches!(query_reply(&out)[0].1, QueryResult::Deleted));
        // A later registration revives the id (lineage reconstruction can recreate a
        // deleted object).
        s.register(obj("x"), NodeId(2), ObjectStatus::Complete, 10, &mut out);
        assert_eq!(s.locations(obj("x")).len(), 1);
    }

    #[test]
    fn node_failure_purges_locations_and_pending() {
        let mut s = shard();
        let mut out = Vec::new();
        s.register(obj("x"), NodeId(0), ObjectStatus::Complete, 10, &mut out);
        s.query(obj("y"), NodeId(0), 1, vec![], &mut out);
        s.node_failed(NodeId(0));
        assert!(s.locations(obj("x")).is_empty());
        // The parked query from the failed node is gone: registering y produces no
        // reply destined to node 0.
        out.clear();
        s.register(obj("y"), NodeId(1), ObjectStatus::Complete, 10, &mut out);
        assert!(!out.iter().any(|(to, _)| *to == NodeId(0)));
    }

    #[test]
    fn requery_releases_previous_lease_and_dedupes() {
        // R1 pulls from S, then re-queries (e.g. after a pull error): S's lease must be
        // released so the re-query can be answered — excluding S — by another holder.
        let mut s = shard();
        let mut out = Vec::new();
        s.register(obj("x"), NodeId(0), ObjectStatus::Complete, 100, &mut out);
        s.register(obj("x"), NodeId(2), ObjectStatus::Complete, 100, &mut out);
        s.query(obj("x"), NodeId(1), 1, vec![], &mut out); // R1 <- S (node 0, lowest id)
        out.clear();
        s.query(obj("x"), NodeId(1), 2, vec![NodeId(0)], &mut out);
        match &query_reply(&out)[0].1 {
            QueryResult::Location { node, .. } => assert_eq!(*node, NodeId(2)),
            other => panic!("unexpected {other:?}"),
        }
        out.clear();
        // Node 0's lease was cleared by the re-query, so a third receiver can use it.
        s.query(obj("x"), NodeId(3), 3, vec![], &mut out);
        match &query_reply(&out)[0].1 {
            QueryResult::Location { node, .. } => assert_eq!(*node, NodeId(0)),
            other => panic!("unexpected {other:?}"),
        }
        // A re-issued duplicate of a parked query replaces it instead of stacking.
        let mut s = shard();
        let mut out = Vec::new();
        s.query(obj("y"), NodeId(4), 9, vec![], &mut out);
        s.query(obj("y"), NodeId(4), 9, vec![], &mut out);
        s.register(obj("y"), NodeId(0), ObjectStatus::Complete, 10, &mut out);
        assert_eq!(query_reply(&out).len(), 1, "one reply for the deduplicated query");
    }

    #[test]
    fn unsubscribe_stops_publications() {
        let mut s = shard();
        let mut out = Vec::new();
        s.subscribe(obj("x"), NodeId(8), &mut out);
        assert_eq!(s.subscriber_count(obj("x")), 1);
        s.unsubscribe(obj("x"), NodeId(8));
        assert_eq!(s.subscriber_count(obj("x")), 0);
        out.clear();
        s.register(obj("x"), NodeId(1), ObjectStatus::Complete, 10, &mut out);
        assert!(!out.iter().any(|(to, _)| *to == NodeId(8)));
    }

    #[test]
    fn inline_eviction_drops_payload_but_keeps_locations() {
        // Budget fits two 32-byte payloads; the third put must evict the coldest,
        // keeping its Complete location record so the object is still servable via
        // the normal pull path.
        let mut s = DirectoryShard::new(
            0,
            HopliteConfig {
                inline_threshold: 64,
                directory_inline_cache_bytes: 64,
                ..HopliteConfig::default()
            },
        );
        let mut out = Vec::new();
        s.put_inline(obj("a"), NodeId(0), Payload::from_vec(vec![1; 32]), &mut out);
        s.put_inline(obj("b"), NodeId(1), Payload::from_vec(vec![2; 32]), &mut out);
        assert_eq!(s.take_inline_evictions(), 0);
        s.put_inline(obj("c"), NodeId(2), Payload::from_vec(vec![3; 32]), &mut out);
        assert_eq!(s.take_inline_evictions(), 1, "coldest payload evicted");
        assert!(s.inline_bytes() <= 64);
        // "a" was the coldest; its location record survives and answers queries as
        // a pull-path Location instead of an Inline hit.
        assert_eq!(s.locations(obj("a")).len(), 1);
        out.clear();
        s.query(obj("a"), NodeId(7), 1, vec![], &mut out);
        match &query_reply(&out)[0].1 {
            QueryResult::Location { node, .. } => assert_eq!(*node, NodeId(0)),
            other => panic!("evicted object must fall back to the pull path, got {other:?}"),
        }
        // The survivors still serve inline.
        out.clear();
        s.query(obj("c"), NodeId(8), 2, vec![], &mut out);
        assert!(matches!(&query_reply(&out)[0].1, QueryResult::Inline { .. }));
    }

    #[test]
    fn inline_hit_refreshes_recency() {
        let mut s = DirectoryShard::new(
            0,
            HopliteConfig {
                inline_threshold: 64,
                directory_inline_cache_bytes: 64,
                ..HopliteConfig::default()
            },
        );
        let mut out = Vec::new();
        s.put_inline(obj("a"), NodeId(0), Payload::from_vec(vec![1; 32]), &mut out);
        s.put_inline(obj("b"), NodeId(1), Payload::from_vec(vec![2; 32]), &mut out);
        // Touch "a": it becomes the hottest, so the next eviction takes "b".
        s.query(obj("a"), NodeId(5), 1, vec![], &mut out);
        s.put_inline(obj("c"), NodeId(2), Payload::from_vec(vec![3; 32]), &mut out);
        assert_eq!(s.take_inline_evictions(), 1);
        out.clear();
        s.query(obj("a"), NodeId(6), 2, vec![], &mut out);
        assert!(matches!(&query_reply(&out)[0].1, QueryResult::Inline { .. }), "a stayed hot");
        out.clear();
        s.query(obj("b"), NodeId(7), 3, vec![], &mut out);
        assert!(
            matches!(&query_reply(&out)[0].1, QueryResult::Location { .. }),
            "b was the LRU victim"
        );
    }

    #[test]
    fn inline_eviction_never_orphans_the_last_copy() {
        // The holder of "a" dies, so its inline payload is the only copy left; the
        // budget squeeze must skip it (and exceed the budget) rather than lose it.
        let mut s = DirectoryShard::new(
            0,
            HopliteConfig {
                inline_threshold: 64,
                directory_inline_cache_bytes: 64,
                ..HopliteConfig::default()
            },
        );
        let mut out = Vec::new();
        s.put_inline(obj("a"), NodeId(0), Payload::from_vec(vec![1; 32]), &mut out);
        s.node_failed(NodeId(0));
        assert!(s.locations(obj("a")).is_empty());
        s.put_inline(obj("b"), NodeId(1), Payload::from_vec(vec![2; 32]), &mut out);
        s.put_inline(obj("c"), NodeId(2), Payload::from_vec(vec![3; 32]), &mut out);
        // "a" is older than "b" but unevictable; "b" takes the hit instead.
        assert_eq!(s.take_inline_evictions(), 1);
        out.clear();
        s.query(obj("a"), NodeId(7), 1, vec![], &mut out);
        assert!(
            matches!(&query_reply(&out)[0].1, QueryResult::Inline { .. }),
            "last-copy inline payload survived the squeeze"
        );
    }

    #[test]
    fn lease_expiry_releases_parked_queries() {
        let mut s = shard();
        let mut out = Vec::new();
        s.register(obj("x"), NodeId(0), ObjectStatus::Complete, 100, &mut out);
        s.query(obj("x"), NodeId(1), 1, vec![], &mut out); // R1 leases S
        out.clear();
        s.query(obj("x"), NodeId(2), 2, vec![], &mut out); // R2 parks behind the lease
        assert!(query_reply(&out).is_empty());
        assert!(s.has_lease_candidates());
        // One full wheel generation must pass before a lease is reclaimed.
        assert_eq!(s.expire_stale_leases(&mut out), 0);
        assert!(query_reply(&out).is_empty());
        let expired = s.expire_stale_leases(&mut out);
        assert_eq!(expired, 1, "R1's unresolved lease reclaimed in bulk");
        let replies = query_reply(&out);
        assert_eq!(replies.len(), 1, "the parked query got the freed sender");
        assert_eq!(replies[0].0, NodeId(2));
    }

    #[test]
    fn resolved_leases_are_not_expired() {
        let mut s = shard();
        let mut out = Vec::new();
        s.register(obj("x"), NodeId(0), ObjectStatus::Complete, 100, &mut out);
        s.query(obj("x"), NodeId(1), 1, vec![], &mut out);
        s.transfer_done(obj("x"), NodeId(1), NodeId(0));
        assert_eq!(s.expire_stale_leases(&mut out), 0);
        assert_eq!(s.expire_stale_leases(&mut out), 0, "resolved candidate skipped lazily");
        assert!(!s.has_lease_candidates(), "wheel drains once candidates resolve");
    }

    #[test]
    fn snapshot_range_respects_budget_and_resumes_to_full_coverage() {
        let mut s = shard();
        let mut out = Vec::new();
        for i in 0..50 {
            s.register(obj(&format!("o{i}")), NodeId(i % 4), ObjectStatus::Complete, 100, &mut out);
        }
        let budget = 256u64;
        let mut cursor: Option<ObjectId> = None;
        let mut collected = Vec::new();
        let mut rounds = 0;
        loop {
            let (entries, done) = s.snapshot_range(cursor, budget);
            let bytes: u64 = entries.iter().map(|e| e.wire_size()).sum();
            assert!(
                bytes <= budget || entries.len() == 1,
                "chunk of {bytes} bytes exceeds the {budget}-byte bound"
            );
            assert!(!entries.is_empty() || done);
            if let Some(last) = entries.last() {
                cursor = Some(last.object);
            }
            collected.extend(entries);
            rounds += 1;
            assert!(rounds < 100, "cursor walk did not terminate");
            if done {
                break;
            }
        }
        assert!(rounds > 1, "budget forced multiple chunks");
        assert_eq!(collected, s.snapshot().entries, "chunk walk covers the exact full state");
    }

    #[test]
    fn excluded_nodes_are_not_returned() {
        let mut s = shard();
        let mut out = Vec::new();
        s.register(obj("x"), NodeId(0), ObjectStatus::Complete, 10, &mut out);
        s.register(obj("x"), NodeId(1), ObjectStatus::Complete, 10, &mut out);
        out.clear();
        s.query(obj("x"), NodeId(2), 1, vec![NodeId(0)], &mut out);
        match &query_reply(&out)[0].1 {
            QueryResult::Location { node, .. } => assert_eq!(*node, NodeId(1)),
            other => panic!("unexpected {other:?}"),
        }
    }
}
