//! Shard placement and the per-node directory service.
//!
//! [`DirectoryPlacement`] is the pure, cluster-wide map from objects to shards and
//! from shards to replica sets: shard `s` lives on nodes `s % n, (s+1) % n, ...`
//! (`directory_replication` of them).
//!
//! [`PlacementView`] is a node's *evolving* view of who leads each shard. It is
//! **epoch-versioned** rather than failure-monotonic: each shard carries a primary
//! *rank cursor* that advances (cyclically) when the current primary fails and never
//! rewinds, plus a *failover epoch* counter bumped on every failure **and** every
//! re-admission of a replica-set member. A node that recovers is first marked
//! *resyncing* (alive, shipped to, but not a primary candidate); once it announces
//! catch-up it is re-admitted and becomes eligible again — so after a rolling restart
//! the original owners end up leading their shards again, with strictly increasing
//! epochs protecting against deposed primaries' stragglers. Because every node folds
//! the same broadcast failure/recovery/re-admission notices into the same
//! deterministic rules, survivors agree on the current primary without a coordination
//! round; transient disagreement is absorbed by op forwarding.
//!
//! [`DirectoryService`] is the server half living inside each node: the shard
//! replicas this node hosts, op routing (apply as primary / forward elsewhere),
//! sequenced log shipping with acks and origin confirms, snapshot serving for
//! recovering replicas, and epoch-stamped promotion when a primary dies (§3.5).

use std::collections::{BTreeMap, BTreeSet, HashSet};

use crate::config::HopliteConfig;
use crate::object::{NodeId, ObjectId, ObjectStatus};
use crate::protocol::{DirOp, Message, ShardSnapshot};

use super::replication::{ReplayOutcome, ReplicaRole, ShardReplica};
use super::shard::DirectoryShard;

/// The static map from objects to shards and shards to replica sets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DirectoryPlacement {
    nodes: Vec<NodeId>,
    num_shards: usize,
    replication: usize,
}

impl DirectoryPlacement {
    /// Build the placement for a cluster. `num_shards` defaults to one shard per node
    /// and `replication` is clamped to the cluster size.
    pub fn new(nodes: Vec<NodeId>, num_shards: Option<usize>, replication: usize) -> Self {
        assert!(!nodes.is_empty(), "placement needs at least one node");
        let num_shards = num_shards.unwrap_or(nodes.len()).max(1);
        let replication = replication.clamp(1, nodes.len());
        DirectoryPlacement { nodes, num_shards, replication }
    }

    /// Build the placement from a node's configuration.
    pub fn from_config(cfg: &HopliteConfig, nodes: &[NodeId]) -> Self {
        DirectoryPlacement::new(nodes.to_vec(), cfg.directory_shards, cfg.directory_replication)
    }

    /// Every node in the cluster, in index order.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// Number of replicas per shard.
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// The shard responsible for `object` (same hash the unreplicated seed used, so
    /// the initial primary of an object's shard is `ClusterView::shard_node`).
    pub fn shard_of(&self, object: ObjectId) -> usize {
        let h = u64::from_le_bytes(object.0[..8].try_into().expect("object id width"));
        (h % self.num_shards as u64) as usize
    }

    /// The replica set of a shard, initial-candidate order: the node owning the shard
    /// first, then its successors on the ring.
    pub fn replica_set(&self, shard: usize) -> Vec<NodeId> {
        let n = self.nodes.len();
        (0..self.replication).map(|i| self.nodes[(shard + i) % n]).collect()
    }

    /// Whether `node` hosts a replica of `shard`.
    pub fn hosts(&self, node: NodeId, shard: usize) -> bool {
        self.replica_set(shard).contains(&node)
    }

    /// The shard's primary under a *failure-monotonic* view — the first replica not in
    /// `failed`. Kept for placement reasoning in tests; live routing goes through
    /// [`PlacementView::primary`], which also honours rank cursors and resyncing
    /// members.
    pub fn primary(&self, shard: usize, failed: &HashSet<NodeId>) -> Option<NodeId> {
        self.replica_set(shard).into_iter().find(|n| !failed.contains(n))
    }

    /// The failure-monotonic primary of the shard responsible for `object`.
    pub fn primary_for(&self, object: ObjectId, failed: &HashSet<NodeId>) -> Option<NodeId> {
        self.primary(self.shard_of(object), failed)
    }

    /// Shards for which `node` is a replica.
    pub fn shards_hosted_by(&self, node: NodeId) -> Vec<usize> {
        (0..self.num_shards).filter(|&s| self.hosts(node, s)).collect()
    }
}

/// A node's evolving, epoch-versioned view of shard leadership (see module docs).
#[derive(Clone, Debug)]
pub struct PlacementView {
    placement: DirectoryPlacement,
    failed: HashSet<NodeId>,
    /// Recovered but not yet caught-up nodes: alive (shipped to) but not primary
    /// candidates. Includes this node itself while it resyncs after a restart.
    resyncing: HashSet<NodeId>,
    /// Per-shard primary cursor into the replica set; advances on primary failure,
    /// never rewinds on re-admission (no automatic fail-back).
    rank: Vec<usize>,
    /// Per-shard failover epoch: counts failures and re-admissions of replica-set
    /// members, raised further by epochs observed on the wire. Promotions stamp
    /// themselves with this counter.
    epochs: Vec<u64>,
}

impl PlacementView {
    /// A fresh view over a placement: rank cursors at the shard owners, epochs at 0.
    pub fn new(placement: DirectoryPlacement) -> Self {
        let shards = placement.num_shards();
        PlacementView {
            placement,
            failed: HashSet::new(),
            resyncing: HashSet::new(),
            rank: vec![0; shards],
            epochs: vec![0; shards],
        }
    }

    /// The static placement underneath.
    pub fn placement(&self) -> &DirectoryPlacement {
        &self.placement
    }

    /// Whether `node` is currently a primary candidate.
    fn eligible(&self, node: NodeId) -> bool {
        !self.failed.contains(&node) && !self.resyncing.contains(&node)
    }

    /// Whether `node` should receive log shipments (alive, possibly still resyncing).
    pub fn is_alive(&self, node: NodeId) -> bool {
        !self.failed.contains(&node)
    }

    /// Whether `node` is currently marked as resyncing.
    pub fn is_resyncing(&self, node: NodeId) -> bool {
        self.resyncing.contains(&node)
    }

    /// The current primary of a shard: the first eligible member scanning cyclically
    /// from the rank cursor. `None` when every replica is dead or resyncing.
    pub fn primary(&self, shard: usize) -> Option<NodeId> {
        let members = self.placement.replica_set(shard);
        let r = members.len();
        (0..r).map(|i| members[(self.rank[shard] + i) % r]).find(|&n| self.eligible(n))
    }

    /// The current primary of the shard responsible for `object`.
    pub fn primary_for(&self, object: ObjectId) -> Option<NodeId> {
        self.primary(self.placement.shard_of(object))
    }

    /// The shard's current failover epoch.
    pub fn epoch(&self, shard: usize) -> u64 {
        self.epochs[shard]
    }

    /// Fold an epoch observed on the wire (a shipment, ack, or snapshot) into the
    /// counter, so a node that missed events can still promote above them.
    pub fn note_epoch(&mut self, shard: usize, epoch: u64) {
        if let Some(e) = self.epochs.get_mut(shard) {
            *e = (*e).max(epoch);
        }
    }

    /// Adopt an authoritative rank cursor learned from a snapshot.
    pub fn set_rank(&mut self, shard: usize, rank: usize) {
        if self.placement.replication() > 0 {
            self.rank[shard] = rank % self.placement.replication();
        }
    }

    /// This shard's rank cursor.
    pub fn current_rank(&self, shard: usize) -> usize {
        self.rank[shard]
    }

    /// The shard's replication chain under chain mode: the current primary first,
    /// then every other live replica-set member (resyncing ones included — they are
    /// shipped to) in cyclic order from the primary's position. Every node folds the
    /// same failure/recovery notices into the same rule, so all members compute the
    /// same chain and can find their own successor/predecessor locally. Empty when
    /// every replica is dead or resyncing.
    pub fn chain(&self, shard: usize) -> Vec<NodeId> {
        let Some(primary) = self.primary(shard) else { return Vec::new() };
        let members = self.placement.replica_set(shard);
        let r = members.len();
        let start = members.iter().position(|&n| n == primary).unwrap_or(0);
        let mut chain = vec![primary];
        chain.extend(
            (1..r).map(|i| members[(start + i) % r]).filter(|&n| n != primary && self.is_alive(n)),
        );
        chain
    }

    /// Digest a peer failure. Returns the shards whose primary moved off `peer` onto
    /// a surviving replica (the client's re-drive set).
    pub fn on_peer_failed(&mut self, peer: NodeId) -> Vec<usize> {
        if self.failed.contains(&peer) {
            return Vec::new();
        }
        let affected: Vec<(usize, Option<NodeId>)> = (0..self.placement.num_shards())
            .filter(|&s| self.placement.hosts(peer, s))
            .map(|s| (s, self.primary(s)))
            .collect();
        self.failed.insert(peer);
        self.resyncing.remove(&peer);
        let mut changed = Vec::new();
        for (shard, old) in affected {
            self.epochs[shard] += 1;
            if old != Some(peer) {
                continue;
            }
            // Advance the cursor past the dead primary so a later re-admission does
            // not fail back to it.
            if let Some(new_primary) = self.primary(shard) {
                let members = self.placement.replica_set(shard);
                if let Some(pos) = members.iter().position(|&n| n == new_primary) {
                    self.rank[shard] = pos;
                }
                changed.push(shard);
            }
        }
        changed
    }

    /// Digest a peer recovery notice: the node is alive again but must resync before
    /// it can lead anything. Returns whether this was news.
    pub fn on_peer_recovered(&mut self, peer: NodeId) -> bool {
        if self.failed.remove(&peer) {
            self.resyncing.insert(peer);
            true
        } else {
            false
        }
    }

    /// Digest a catch-up announcement: the node is a full replica again. Bumps the
    /// failover epoch of every shard it hosts (re-admission is a leadership-relevant
    /// event, exactly like a failure). Returns the shards that regained a primary
    /// with this re-admission — a shard whose every other replica died while `peer`
    /// was out goes `None → Some(peer)` here, and clients must re-drive their
    /// unconfirmed intents at it just as they would after a failover.
    pub fn on_peer_readmitted(&mut self, peer: NodeId) -> Vec<usize> {
        if !self.resyncing.contains(&peer) && !self.failed.contains(&peer) {
            return Vec::new();
        }
        let affected: Vec<(usize, Option<NodeId>)> = (0..self.placement.num_shards())
            .filter(|&s| self.placement.hosts(peer, s))
            .map(|s| (s, self.primary(s)))
            .collect();
        self.resyncing.remove(&peer);
        self.failed.remove(&peer);
        let mut regained = Vec::new();
        for (shard, old) in affected {
            self.epochs[shard] += 1;
            if old.is_none() && self.primary(shard).is_some() {
                regained.push(shard);
            }
        }
        regained
    }

    /// Mark this node itself as resyncing after a restart (all shards).
    pub fn begin_self_resync(&mut self, me: NodeId) {
        self.resyncing.insert(me);
    }

    /// This node finished resyncing: make it eligible again and bump the epochs of
    /// its hosted shards (the same bump every peer applies on `DirResynced`).
    pub fn finish_self_resync(&mut self, me: NodeId) {
        let _ = self.on_peer_readmitted(me);
    }
}

/// The directory server half of one node: every shard replica it hosts, plus the
/// routing, replication, resync, and promotion logic around them.
#[derive(Debug)]
pub struct DirectoryService {
    me: NodeId,
    view: PlacementView,
    /// Shard index -> this node's replica of it. `BTreeMap` so iteration order (and
    /// therefore promotion order on failure) is deterministic.
    replicas: BTreeMap<usize, ShardReplica>,
    /// Shards awaiting a snapshot, mapped to the node the request went to (so the
    /// request can be re-targeted if that node dies mid-transfer).
    resync_sources: BTreeMap<usize, NodeId>,
    /// `true` between [`DirectoryService::begin_local_resync`] and the installation
    /// of the last outstanding snapshot.
    local_resync: bool,
    /// Set when the local resync completes; the facade drains it with
    /// [`DirectoryService::take_readmission_announcement`] and broadcasts
    /// `DirResynced`.
    announce_readmission: bool,
    /// Chain replication enabled by configuration (effective only with
    /// `directory_replication >= 3`; chain and star coincide below that).
    chain: bool,
    /// Cumulative `DirAck`s this node folded and relayed upstream as a chain middle
    /// member. Drained by the facade into `NodeMetrics::chain_ack_depth`.
    chain_acks_relayed: u64,
    /// Source-side state of chunked resync streams this node is serving, keyed by
    /// `(shard, requester)`: the cursor confirmed by the requester's last request
    /// plus the objects mutated behind it since (re-shipped with the next chunk).
    streams: BTreeMap<(usize, NodeId), ChunkStream>,
    /// `DirSnapshotChunk` frames served (drained into `NodeMetrics`).
    snapshot_chunks_sent: u64,
    /// Bytes of shard state shipped in served chunks (drained into `NodeMetrics`).
    snapshot_bytes: u64,
    /// Resyncs served as op replays instead of state (drained into `NodeMetrics`).
    delta_resyncs: u64,
}

/// Source-side bookkeeping of one chunked resync stream. Entries at or before the
/// requester-confirmed cursor that a later op mutates are tracked here and
/// re-shipped, so the assembled state at the receiver converges to the source's
/// even though the source never pauses op processing. (Failure purges need no
/// tracking: the receiver applies the same deterministic purge to its partial
/// state when the failure notice reaches it.)
#[derive(Debug, Default)]
struct ChunkStream {
    /// Highest object id shipped so far (entries at or before it are "behind" the
    /// stream and must be re-shipped if mutated).
    cursor: Option<ObjectId>,
    dirty: BTreeSet<ObjectId>,
}

impl DirectoryService {
    /// Create the service for node `me`, instantiating a replica for every shard the
    /// placement assigns it.
    pub fn new(me: NodeId, cfg: &HopliteConfig, nodes: &[NodeId]) -> Self {
        let placement = DirectoryPlacement::from_config(cfg, nodes);
        let replicas = placement
            .shards_hosted_by(me)
            .into_iter()
            .map(|shard| {
                let role = if placement.replica_set(shard)[0] == me {
                    ReplicaRole::Primary
                } else {
                    ReplicaRole::Backup
                };
                (shard, ShardReplica::new(DirectoryShard::new(shard, cfg.clone()), role))
            })
            .collect();
        DirectoryService {
            me,
            view: PlacementView::new(placement),
            replicas,
            resync_sources: BTreeMap::new(),
            local_resync: false,
            announce_readmission: false,
            chain: cfg.directory_chain_replication,
            chain_acks_relayed: 0,
            streams: BTreeMap::new(),
            snapshot_chunks_sent: 0,
            snapshot_bytes: 0,
            delta_resyncs: 0,
        }
    }

    /// The static placement in effect.
    pub fn placement(&self) -> &DirectoryPlacement {
        self.view.placement()
    }

    /// The evolving leadership view.
    pub fn view(&self) -> &PlacementView {
        &self.view
    }

    /// The current primary of the shard responsible for `object`, in this node's view.
    pub fn primary_for(&self, object: ObjectId) -> Option<NodeId> {
        self.view.primary_for(object)
    }

    /// Whether this node believes it is the primary for `object`'s shard.
    pub fn is_primary_for(&self, object: ObjectId) -> bool {
        self.primary_for(object) == Some(self.me)
    }

    /// This node's replica of `shard`, if it hosts one.
    pub fn replica(&self, shard: usize) -> Option<&ShardReplica> {
        self.replicas.get(&shard)
    }

    /// Known locations of `object` in this node's replica of its shard; `None` when
    /// this node hosts no replica of that shard.
    pub fn locations(&self, object: ObjectId) -> Option<Vec<(NodeId, ObjectStatus)>> {
        self.replicas.get(&self.view.placement().shard_of(object)).map(|r| r.locations(object))
    }

    /// Whether this node is mid-resync after a restart.
    pub fn is_resyncing(&self) -> bool {
        self.local_resync
    }

    /// The live backups of `shard` in this node's view (replica-set members other
    /// than this node that are not failed — resyncing members included, since they
    /// are catching up on the same log).
    fn live_backups(&self, shard: usize) -> Vec<NodeId> {
        self.view
            .placement()
            .replica_set(shard)
            .into_iter()
            .filter(|&n| n != self.me && self.view.is_alive(n))
            .collect()
    }

    /// Whether this deployment replicates shards along a chain (primary → b1 → b2,
    /// cumulative acks flowing back from the tail) instead of star fan-out. With
    /// fewer than three replicas the two topologies coincide, so star is kept.
    fn chain_enabled(&self) -> bool {
        self.chain && self.view.placement().replication() >= 3
    }

    /// The backups whose acks gate durability when this node is `shard`'s primary:
    /// just the chain head under chain replication (its cumulative ack, folded back
    /// hop by hop from the tail, certifies the whole chain), every live backup under
    /// star fan-out.
    fn tracked_backups(&self, shard: usize) -> Vec<NodeId> {
        if self.chain_enabled() {
            self.view.chain(shard).into_iter().skip(1).take(1).collect()
        } else {
            self.live_backups(shard)
        }
    }

    /// This node's downstream neighbour on the shard's replication chain (`None` at
    /// the tail, or when chain mode is off / this node is not on the chain).
    fn chain_successor(&self, shard: usize) -> Option<NodeId> {
        if !self.chain_enabled() {
            return None;
        }
        let chain = self.view.chain(shard);
        let pos = chain.iter().position(|&n| n == self.me)?;
        chain.get(pos + 1).copied()
    }

    /// This node's upstream neighbour on the shard's replication chain (`None` at
    /// the primary, or when chain mode is off / this node is not on the chain).
    fn chain_predecessor(&self, shard: usize) -> Option<NodeId> {
        if !self.chain_enabled() {
            return None;
        }
        let chain = self.view.chain(shard);
        let pos = chain.iter().position(|&n| n == self.me)?;
        pos.checked_sub(1).map(|p| chain[p])
    }

    /// Chain mode, primary side: after a membership change (chain member died or was
    /// re-admitted), re-anchor the tracked head and re-ship the retained unacked
    /// suffix to it, so ops that were in flight through the old chain are not lost.
    /// The head's duplicate detection makes the re-ship idempotent; a head that is
    /// too far behind answers with a snapshot request instead of an ack.
    fn resplice_chain(&mut self, shard: usize, out: &mut Vec<(NodeId, Message)>) {
        let tracked = self.tracked_backups(shard);
        let Some(replica) = self.replicas.get_mut(&shard) else { return };
        if replica.role() != ReplicaRole::Primary {
            return;
        }
        out.extend(replica.set_tracked_backups(&tracked));
        let Some(&head) = tracked.first() else { return };
        let epoch = replica.epoch();
        for (seq, op) in replica.unacked_suffix(0) {
            out.push((head, Message::DirReplicate { shard: shard as u64, epoch, seq, op }));
        }
    }

    /// Drain the count of cumulative acks this node relayed upstream as a chain
    /// member (folded into `NodeMetrics::chain_ack_depth` by the node facade).
    pub fn take_chain_ack_relays(&mut self) -> u64 {
        std::mem::take(&mut self.chain_acks_relayed)
    }

    /// Route one client directory op: apply it if this node is the shard's primary
    /// (emitting replies, log-shipping the op, and later confirming it to its
    /// origin), forward it to the believed primary otherwise. Ops for a shard whose
    /// every replica died are dropped — that metadata is gone.
    pub fn handle_op(&mut self, op: DirOp, out: &mut Vec<(NodeId, Message)>) -> bool {
        let shard = self.view.placement().shard_of(op.object());
        match self.view.primary(shard) {
            Some(primary) if primary == self.me => {
                // Entries already streamed to a mid-resync requester go stale when
                // a later op touches them; mark them for re-shipment.
                let object = op.object();
                for ((s, _), stream) in self.streams.iter_mut() {
                    if *s == shard && stream.cursor.is_some_and(|c| object <= c) {
                        stream.dirty.insert(object);
                    }
                }
                // Under star fan-out every live backup is shipped to and tracked;
                // under chain replication only the chain head is — it relays the op
                // down the chain and its cumulative ack certifies the whole chain.
                let backups = self.tracked_backups(shard);
                let replica = self.replicas.get_mut(&shard).expect("primary hosts its shard");
                out.extend(replica.set_tracked_backups(&backups));
                let confirm = op
                    .confirm_target()
                    .map(|(to, kind)| (to, Message::DirConfirm { object: op.object(), kind }));
                let seq = replica.apply_primary(&op, confirm, out);
                let epoch = replica.epoch();
                if backups.is_empty() {
                    // A lone replica is trivially durable: confirm immediately.
                    out.extend(replica.take_durable_confirms());
                }
                for backup in backups {
                    out.push((
                        backup,
                        Message::DirReplicate { shard: shard as u64, epoch, seq, op: op.clone() },
                    ));
                }
                true
            }
            Some(primary) => {
                // A client with a staler failure view than ours (or a scheduling race
                // around a promotion) sent the op here; pass it along.
                out.push((primary, op.into_message()));
                false
            }
            None => false,
        }
    }

    /// Replay an op shipped by a shard's primary (or, under chain replication, by
    /// this node's chain predecessor) into this node's backup replica. Under star
    /// fan-out an applied op is acked straight back to the shipper; on a chain a
    /// non-tail member instead relays the op to its successor and stays silent — the
    /// tail's ack flows back hop by hop through [`DirectoryService::handle_ack`].
    /// A log gap this replica cannot bridge is answered with a snapshot request.
    pub fn handle_replicate(
        &mut self,
        shard: usize,
        epoch: u64,
        seq: u64,
        op: &DirOp,
        from: NodeId,
        out: &mut Vec<(NodeId, Message)>,
    ) -> bool {
        self.view.note_epoch(shard, epoch);
        let successor = self.chain_successor(shard);
        let Some(replica) = self.replicas.get_mut(&shard) else { return false };
        match replica.apply_replicated(epoch, seq, op) {
            ReplayOutcome::Acked(acked) => {
                let epoch = replica.epoch();
                if let Some(successor) = successor {
                    // Chain middle: pass the op downstream (duplicates too — a
                    // re-shipped suffix after a re-splice must reach the tail, whose
                    // own duplicate detection re-acks it) and do not ack here; the
                    // cumulative ack comes back from the tail.
                    out.push((
                        successor,
                        Message::DirReplicate { shard: shard as u64, epoch, seq, op: op.clone() },
                    ));
                    return true;
                }
                out.push((from, Message::DirAck { shard: shard as u64, epoch, seq: acked }));
                true
            }
            ReplayOutcome::NeedsResync => {
                // A mid-chain member that fell behind still relays the op downstream
                // at its shipped (epoch, seq): the tail keeps converging while this
                // member catches up, instead of the whole suffix stalling behind one
                // replica's resync. The stalled ack flow (bounded by this member's
                // applied prefix) keeps confirms conservative in the meantime.
                if let Some(successor) = successor {
                    out.push((
                        successor,
                        Message::DirReplicate { shard: shard as u64, epoch, seq, op: op.clone() },
                    ));
                }
                self.request_resync(shard, from, false, out);
                false
            }
            ReplayOutcome::Buffered => {
                if let Some(successor) = successor {
                    out.push((
                        successor,
                        Message::DirReplicate { shard: shard as u64, epoch, seq, op: op.clone() },
                    ));
                }
                false
            }
            ReplayOutcome::Rejected => false,
        }
    }

    /// Fold a backup's cumulative ack into the shard's log, emitting any confirms
    /// that became due. On a replication chain an ack arriving at a *backup* is the
    /// downstream chain's cumulative ack: it is bounded by this member's own applied
    /// prefix (the chain guarantee is "applied by me *and* everyone below me") and
    /// relayed one hop upstream toward the primary.
    pub fn handle_ack(
        &mut self,
        shard: usize,
        from: NodeId,
        epoch: u64,
        seq: u64,
        out: &mut Vec<(NodeId, Message)>,
    ) {
        self.view.note_epoch(shard, epoch);
        let predecessor = self.chain_predecessor(shard);
        let Some(replica) = self.replicas.get_mut(&shard) else { return };
        if replica.role() == ReplicaRole::Primary {
            out.extend(replica.record_ack(from, seq));
        } else if let Some(pred) = predecessor {
            let seq = seq.min(replica.applied_seq());
            let epoch = replica.epoch();
            out.push((pred, Message::DirAck { shard: shard as u64, epoch, seq }));
            self.chain_acks_relayed += 1;
        }
    }

    /// Serve (or forward) a recovering replica's resync request. A request is also
    /// implicit evidence about the requester's liveness: a *restart* request from a
    /// node this view still considers a healthy primary means the failure notice has
    /// not arrived yet — a node asking for its shard's state back cannot lead it —
    /// so the implied failure (and recovery) is folded in first instead of silently
    /// dropping the request and wedging the restarted node. A gap-catch-up request
    /// (`restart == false`) from a live backup leaves the liveness view untouched.
    ///
    /// Serving is **chunked and incremental**: a requester whose gap the retained
    /// log suffix covers gets a [`Message::DirResyncDelta`] op replay; everyone else
    /// gets exactly one bounded [`Message::DirSnapshotChunk`] per request, so chunks
    /// interleave with live op shipments and the source is never paused for
    /// O(objects) time.
    #[allow(clippy::too_many_arguments)] // mirrors the DirSnapshotRequest wire fields
    pub fn handle_snapshot_request(
        &mut self,
        shard: usize,
        requester: NodeId,
        restart: bool,
        after: Option<ObjectId>,
        have_epoch: u64,
        have_seq: u64,
        out: &mut Vec<(NodeId, Message)>,
    ) {
        if restart && self.view.is_alive(requester) && !self.view.is_resyncing(requester) {
            self.on_peer_failed(requester, out);
        }
        self.view.on_peer_recovered(requester);
        if !self.view.placement().hosts(requester, shard) {
            return;
        }
        match self.view.primary(shard) {
            Some(primary) if primary == self.me => {
                self.serve_resync(shard, requester, after, have_epoch, have_seq, out);
            }
            Some(primary) if primary != requester => {
                out.push((
                    primary,
                    Message::DirSnapshotRequest {
                        shard: shard as u64,
                        requester,
                        restart,
                        after,
                        have_epoch,
                        have_seq,
                        digest: Vec::new(),
                    },
                ));
            }
            _ => {}
        }
    }

    /// Serve one resync round as the shard's primary: a delta replay when the
    /// requester's gap is bridgeable, one bounded state chunk otherwise.
    fn serve_resync(
        &mut self,
        shard: usize,
        requester: NodeId,
        after: Option<ObjectId>,
        have_epoch: u64,
        have_seq: u64,
        out: &mut Vec<(NodeId, Message)>,
    ) {
        let rank = self.view.current_rank(shard) as u64;
        let key = (shard, requester);
        let replica = self.replicas.get(&shard).expect("primary hosts its shard");
        let budget = replica.shard().config().snapshot_chunk_bytes.max(1);
        let epoch = replica.epoch();
        let seq = replica.applied_seq();

        // Delta path: a stream-opening request whose prefix the retained suffix
        // covers replays ops instead of shipping state. (Replayed history can
        // transiently resurrect a location registered by a node that has since
        // failed; the receiver re-applies the purges for currently-dead peers on
        // completion, and any residual staleness heals through the pull-timeout
        // failover path like every other stale directory hint.)
        if after.is_none() && replica.delta_covers(have_epoch, have_seq) {
            self.streams.remove(&key);
            let all = replica.delta_ops(have_seq);
            let total = all.len();
            // One budget-bounded frame per request — the receiver pulls the next
            // frame with an updated `have_seq`, so reordering cannot complete a
            // stream with holes and a long suffix never becomes an O(gap) burst.
            let mut ops: Vec<(u64, DirOp)> = Vec::new();
            let mut used = 0u64;
            for (op_seq, op) in all {
                let sz = Message::DirResyncDelta {
                    shard: 0,
                    epoch: 0,
                    ops: vec![(op_seq, op.clone())],
                    done: false,
                }
                .wire_size();
                if !ops.is_empty() && used + sz > budget {
                    break;
                }
                used += sz;
                ops.push((op_seq, op));
            }
            let done = ops.len() == total;
            if done {
                self.delta_resyncs += 1;
            }
            out.push((
                requester,
                Message::DirResyncDelta { shard: shard as u64, epoch, ops, done },
            ));
            return;
        }

        // Chunk path: serve exactly one bounded chunk per request. Entries mutated
        // behind the requester's cursor since they were shipped are flushed first
        // (in their own chunks when they do not fit); fresh range entries advance
        // the cursor; `done` only once the range is exhausted and no dirty backlog
        // remains.
        if after.is_none() {
            // A fresh stream (or a from-scratch restart of one): forget any
            // previous progress for this requester.
            self.streams.insert(key, ChunkStream::default());
        }
        let stream = self.streams.entry(key).or_default();
        stream.cursor = match (stream.cursor, after) {
            (Some(c), Some(a)) => Some(c.max(a)),
            (c, a) => c.or(a),
        };
        let dirty_backlog = std::mem::take(&mut stream.dirty);
        let replica = self.replicas.get(&shard).expect("primary hosts its shard");
        let (entries, done) = if dirty_backlog.is_empty() {
            replica.shard().snapshot_range(after, budget)
        } else {
            let mut kept = Vec::new();
            let mut used = 0u64;
            for entry in replica.shard().snapshot_entries_for(dirty_backlog.iter().copied()) {
                let sz = entry.wire_size();
                if kept.is_empty() || used + sz <= budget {
                    used += sz;
                    kept.push(entry);
                }
            }
            (kept, false)
        };
        let stream = self.streams.entry(key).or_default();
        if !dirty_backlog.is_empty() {
            stream.dirty.extend(
                dirty_backlog.into_iter().filter(|o| !entries.iter().any(|e| e.object == *o)),
            );
        }
        if let Some(last) = entries.last() {
            stream.cursor = Some(stream.cursor.map_or(last.object, |c| c.max(last.object)));
        }
        if done {
            self.streams.remove(&key);
        }
        let state = ShardSnapshot { entries };
        self.snapshot_chunks_sent += 1;
        self.snapshot_bytes += state.wire_size();
        out.push((
            requester,
            Message::DirSnapshotChunk { shard: shard as u64, epoch, seq, rank, done, state },
        ));
    }

    /// Install a snapshot into this node's replica of `shard`. Returns `true` when
    /// the snapshot was installed. When the installation completes the node's local
    /// resync, a re-admission announcement becomes pending — the caller checks
    /// [`DirectoryService::take_readmission_announcement`] after this (and after
    /// [`DirectoryService::on_peer_failed`], which can also complete a resync by
    /// abandoning a sourceless shard).
    #[allow(clippy::too_many_arguments)] // mirrors the DirSnapshot wire fields
    pub fn handle_snapshot(
        &mut self,
        shard: usize,
        epoch: u64,
        seq: u64,
        rank: usize,
        state: &crate::protocol::ShardSnapshot,
        from: NodeId,
        out: &mut Vec<(NodeId, Message)>,
    ) -> bool {
        self.view.note_epoch(shard, epoch);
        let Some(replica) = self.replicas.get_mut(&shard) else { return false };
        let Some(acked) = replica.install_snapshot(epoch, seq, state) else { return false };
        self.view.set_rank(shard, rank);
        self.resync_sources.remove(&shard);
        out.push((from, Message::DirAck { shard: shard as u64, epoch, seq: acked }));
        self.maybe_complete_local_resync();
        true
    }

    /// Install one chunk of a resync stream into this node's replica of `shard`,
    /// then either request the next chunk from the server's cursor or — on the
    /// final chunk — ack and complete the resync, exactly like
    /// [`DirectoryService::handle_snapshot`]. Returns `true` when the stream
    /// completed here. Chunks for a shard with no outstanding resync (a completed
    /// or re-targeted stream) and chunks from a source this view considers dead
    /// are dropped: they are stragglers of an abandoned stream.
    #[allow(clippy::too_many_arguments)] // mirrors the DirSnapshotChunk wire fields
    pub fn handle_snapshot_chunk(
        &mut self,
        shard: usize,
        epoch: u64,
        seq: u64,
        rank: usize,
        done: bool,
        state: &ShardSnapshot,
        from: NodeId,
        out: &mut Vec<(NodeId, Message)>,
    ) -> bool {
        self.view.note_epoch(shard, epoch);
        if !self.resync_sources.contains_key(&shard) || !self.view.is_alive(from) {
            return false;
        }
        let Some(replica) = self.replicas.get_mut(&shard) else { return false };
        match replica.install_chunk(epoch, seq, &state.entries, done) {
            None => false,
            Some(None) => {
                // Mid-stream: the chunk may have been served by a different node
                // than the request went to (a forwarded request); track the actual
                // server so a source death re-targets correctly, and pull the next
                // chunk from the installed cursor.
                self.resync_sources.insert(shard, from);
                out.push((
                    from,
                    Message::DirSnapshotRequest {
                        shard: shard as u64,
                        requester: self.me,
                        restart: false,
                        after: replica.resync_cursor(),
                        have_epoch: replica.epoch(),
                        have_seq: replica.applied_seq(),
                        digest: Vec::new(),
                    },
                ));
                false
            }
            Some(Some(acked)) => {
                self.view.set_rank(shard, rank);
                self.resync_sources.remove(&shard);
                out.push((from, Message::DirAck { shard: shard as u64, epoch, seq: acked }));
                self.maybe_complete_local_resync();
                true
            }
        }
    }

    /// Replay one frame of a delta resync into this node's replica of `shard`.
    /// Returns `true` when the final frame completed the resync (acked like a
    /// snapshot installation). Frames for a shard with no outstanding resync, or
    /// from a dead source, are dropped.
    pub fn handle_resync_delta(
        &mut self,
        shard: usize,
        epoch: u64,
        ops: &[(u64, DirOp)],
        done: bool,
        from: NodeId,
        out: &mut Vec<(NodeId, Message)>,
    ) -> bool {
        self.view.note_epoch(shard, epoch);
        if !self.resync_sources.contains_key(&shard) || !self.view.is_alive(from) {
            return false;
        }
        let Some(replica) = self.replicas.get_mut(&shard) else { return false };
        let stale = epoch < replica.epoch();
        let Some(acked) = replica.apply_delta(epoch, ops, done) else {
            if !done && !stale {
                // Mid-stream frame applied: pull the next one from the advanced
                // prefix (one frame in flight at a time, like the chunk stream).
                self.resync_sources.insert(shard, from);
                out.push((
                    from,
                    Message::DirSnapshotRequest {
                        shard: shard as u64,
                        requester: self.me,
                        restart: false,
                        after: None,
                        have_epoch: replica.epoch(),
                        have_seq: replica.applied_seq(),
                        digest: Vec::new(),
                    },
                ));
            }
            return false;
        };
        // Replayed history may re-register locations held by peers that died (or
        // restarted and are still resyncing) inside the replay window; re-apply
        // their purges, as the source did when it observed the failures.
        for &peer in self.view.placement().nodes() {
            if !self.view.is_alive(peer) || self.view.is_resyncing(peer) {
                replica.node_failed(peer);
            }
        }
        self.resync_sources.remove(&shard);
        out.push((from, Message::DirAck { shard: shard as u64, epoch, seq: acked }));
        self.maybe_complete_local_resync();
        true
    }

    /// If the last outstanding snapshot was just installed or abandoned, finish the
    /// local resync: become eligible again, promote wherever this node is now the
    /// shard's leader, and queue the cluster-wide `DirResynced` announcement.
    fn maybe_complete_local_resync(&mut self) {
        if !self.local_resync || !self.resync_sources.is_empty() {
            return;
        }
        self.local_resync = false;
        self.view.finish_self_resync(self.me);
        self.promote_where_leader();
        self.announce_readmission = true;
    }

    /// Promote any hosted Backup replica for a shard this node's view says it now
    /// leads (e.g. the interim primary died while this node was still resyncing, so
    /// eligibility only returned with the resync's completion). A replica still
    /// waiting on a snapshot with no possible source is adopted as-is first.
    fn promote_where_leader(&mut self) {
        let shards: Vec<usize> = self.replicas.keys().copied().collect();
        for shard in shards {
            if self.view.primary(shard) != Some(self.me) {
                continue;
            }
            let backups = self.tracked_backups(shard);
            let epoch = self.view.epoch(shard);
            let replica = self.replicas.get_mut(&shard).expect("iterating hosted shards");
            if replica.role() == ReplicaRole::Backup {
                if replica.is_resyncing() {
                    replica.abort_resync();
                }
                replica.promote_to(epoch);
                replica.set_tracked_backups(&backups);
            }
        }
    }

    /// Take the pending `DirResynced` announcement, if the local resync just
    /// completed. The facade broadcasts it to every peer exactly once.
    pub fn take_readmission_announcement(&mut self) -> bool {
        std::mem::take(&mut self.announce_readmission)
    }

    /// Digest a peer failure: update the leadership view, purge the dead node from
    /// every hosted replica, release confirms its pending ack was gating, promote
    /// this node's replicas wherever it just became the shard's leader, and
    /// re-target any in-flight resync that was sourced from the dead node. Returns
    /// the shards promoted here (for tracing and metrics).
    pub fn on_peer_failed(&mut self, peer: NodeId, out: &mut Vec<(NodeId, Message)>) -> Vec<usize> {
        self.view.on_peer_failed(peer);
        // Chunk streams this node was serving to the dead peer are abandoned.
        self.streams.retain(|(_, requester), _| *requester != peer);
        let mut promoted = Vec::new();
        let shards: Vec<usize> = self.replicas.keys().copied().collect();
        for shard in shards {
            let chain_member_died =
                self.chain_enabled() && self.view.placement().hosts(peer, shard);
            let backups = self.tracked_backups(shard);
            let role = {
                let replica = self.replicas.get_mut(&shard).expect("iterating hosted shards");
                replica.node_failed(peer);
                replica.role()
            };
            if role == ReplicaRole::Primary {
                // The dead node no longer gates durability. On a chain, re-anchor
                // the tracked head and re-ship the unacked suffix so ops that were
                // in flight through the dead member are not lost.
                if chain_member_died {
                    self.resplice_chain(shard, out);
                } else {
                    let replica = self.replicas.get_mut(&shard).expect("iterating hosted shards");
                    out.extend(replica.set_tracked_backups(&backups));
                }
            } else if self.view.primary(shard) == Some(self.me) {
                let epoch = self.view.epoch(shard);
                let replica = self.replicas.get_mut(&shard).expect("iterating hosted shards");
                replica.promote_to(epoch);
                replica.set_tracked_backups(&backups);
                promoted.push(shard);
            } else if chain_member_died {
                // Surviving chain member below the primary: the dead peer may have
                // been our downstream (whose acks will never arrive) or our upstream
                // (who relayed for us). Re-anchor the ack flow immediately by
                // sending our applied prefix as a cumulative ack to whoever is our
                // predecessor on the re-formed chain.
                if let Some(pred) = self.chain_predecessor(shard) {
                    let replica = self.replicas.get(&shard).expect("iterating hosted shards");
                    if replica.role() == ReplicaRole::Backup && !replica.is_resyncing() {
                        out.push((
                            pred,
                            Message::DirAck {
                                shard: shard as u64,
                                epoch: replica.epoch(),
                                seq: replica.applied_seq(),
                            },
                        ));
                    }
                }
            }
        }
        // Re-target interrupted resyncs whose source died.
        let stranded: Vec<usize> =
            self.resync_sources.iter().filter(|(_, &src)| src == peer).map(|(&s, _)| s).collect();
        for shard in stranded {
            self.resync_sources.remove(&shard);
            match self.view.primary(shard) {
                Some(primary) if primary != self.me => {
                    let restart = self.local_resync;
                    self.request_resync(shard, primary, restart, out);
                }
                _ => {
                    // No surviving source: the shard's metadata is lost. Stop waiting
                    // so the node can still finish its overall resync.
                    if let Some(replica) = self.replicas.get_mut(&shard) {
                        replica.abort_resync();
                    }
                }
            }
        }
        // Every outstanding snapshot may now be installed or abandoned; if so, finish
        // the local resync (which also promotes wherever this node became leader and
        // queues the re-admission announcement).
        self.maybe_complete_local_resync();
        promoted
    }

    /// Digest a peer recovery notice (alive again, resyncing).
    pub fn on_peer_recovered(&mut self, peer: NodeId) {
        self.view.on_peer_recovered(peer);
    }

    /// Digest a peer's catch-up announcement (full replica again). Under chain
    /// replication the re-admitted member splices back into every chain it belongs
    /// to: a primary re-anchors its tracked head and re-ships the unacked suffix,
    /// and a downstream member re-anchors the ack flow at its (possibly new)
    /// predecessor — `out` carries the resulting shipments and acks.
    pub fn on_peer_readmitted(&mut self, peer: NodeId, out: &mut Vec<(NodeId, Message)>) {
        self.view.on_peer_readmitted(peer);
        let shards: Vec<usize> = self.replicas.keys().copied().collect();
        for shard in shards {
            if !self.view.placement().hosts(peer, shard) {
                continue;
            }
            let role = self.replicas.get(&shard).expect("iterating hosted shards").role();
            if !self.chain_enabled() {
                // Star fan-out: ops applied after the peer's catch-up stream closed
                // but before this announcement were never shipped (the peer was not
                // yet tracked). Re-ship the retained suffix: a caught-up peer drops
                // the duplicates, a peer missing ops within the ring applies them,
                // and a peer behind by more than the ring sees a sequence gap and
                // requests a (delta) resync itself.
                if role == ReplicaRole::Primary && peer != self.me {
                    let backups = self.tracked_backups(shard);
                    let replica = self.replicas.get_mut(&shard).expect("iterating hosted shards");
                    out.extend(replica.set_tracked_backups(&backups));
                    let epoch = replica.epoch();
                    for (seq, op) in replica.delta_ops(0) {
                        out.push((
                            peer,
                            Message::DirReplicate { shard: shard as u64, epoch, seq, op },
                        ));
                    }
                }
                continue;
            }
            if role == ReplicaRole::Primary {
                self.resplice_chain(shard, out);
            } else if let Some(pred) = self.chain_predecessor(shard) {
                let replica = self.replicas.get(&shard).expect("iterating hosted shards");
                if !replica.is_resyncing() {
                    out.push((
                        pred,
                        Message::DirAck {
                            shard: shard as u64,
                            epoch: replica.epoch(),
                            seq: replica.applied_seq(),
                        },
                    ));
                }
            }
        }
    }

    /// Start recovery after a restart: demote every hosted replica, mark this node
    /// resyncing, and request a snapshot of each hosted shard from another replica.
    /// Returns `false` when there is nothing to resync from (single-replica shards
    /// only), in which case the node proceeds as a cold-started primary.
    pub fn begin_local_resync(&mut self, out: &mut Vec<(NodeId, Message)>) -> bool {
        let shards: Vec<usize> = self.replicas.keys().copied().collect();
        let mut any = false;
        for shard in shards {
            let source =
                self.view.placement().replica_set(shard).into_iter().find(|&n| n != self.me);
            let Some(source) = source else { continue };
            any = true;
            self.request_resync(shard, source, true, out);
        }
        if any {
            self.local_resync = true;
            self.view.begin_self_resync(self.me);
        }
        any
    }

    fn request_resync(
        &mut self,
        shard: usize,
        source: NodeId,
        restart: bool,
        out: &mut Vec<(NodeId, Message)>,
    ) {
        let (after, have_epoch, have_seq) = match self.replicas.get_mut(&shard) {
            Some(replica) => {
                replica.begin_resync();
                // A mid-flight chunk stream resumes from its cursor at the (new)
                // source instead of restarting from scratch.
                (replica.resync_cursor(), replica.epoch(), replica.applied_seq())
            }
            None => (None, 0, 0),
        };
        self.resync_sources.insert(shard, source);
        out.push((
            source,
            Message::DirSnapshotRequest {
                shard: shard as u64,
                requester: self.me,
                restart,
                after,
                have_epoch,
                have_seq,
                digest: Vec::new(),
            },
        ));
    }

    /// Drain the resync-source counters `(chunks_sent, chunk_bytes, delta_resyncs)`
    /// (folded into `NodeMetrics` by the node facade).
    pub fn take_resync_counters(&mut self) -> (u64, u64, u64) {
        (
            std::mem::take(&mut self.snapshot_chunks_sent),
            std::mem::take(&mut self.snapshot_bytes),
            std::mem::take(&mut self.delta_resyncs),
        )
    }

    /// Drain the inline-eviction count across every hosted replica.
    pub fn take_inline_evictions(&mut self) -> u64 {
        self.replicas.values_mut().map(|r| r.take_inline_evictions()).sum()
    }

    /// Whether any hosted replica's lease wheel might hold candidates (drives the
    /// facade's lazy re-arming of the expiry timer; may over-approximate).
    pub fn has_lease_candidates(&self) -> bool {
        self.replicas.values().any(|r| r.has_lease_candidates())
    }

    /// Run one bulk lease-expiry tick over every hosted replica (backups expire
    /// silently). Returns how many leases were reclaimed.
    pub fn expire_leases(&mut self, out: &mut Vec<(NodeId, Message)>) -> u64 {
        self.replicas.values_mut().map(|r| r.expire_stale_leases(out)).sum()
    }

    /// Shards with an unanswered snapshot request (introspection for tests).
    pub fn pending_resyncs(&self) -> BTreeSet<usize> {
        self.resync_sources.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ConfirmKind;

    fn nodes(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    fn obj(name: &str) -> ObjectId {
        ObjectId::from_name(name)
    }

    fn reg(o: ObjectId, holder: u32) -> DirOp {
        DirOp::Register {
            object: o,
            holder: NodeId(holder),
            status: ObjectStatus::Complete,
            size: 10,
        }
    }

    fn obj_in_shard(svc: &DirectoryService, shard: usize) -> ObjectId {
        (0u64..)
            .map(|k| obj(&format!("shard-{shard}-{k}")))
            .find(|&o| svc.placement().shard_of(o) == shard)
            .unwrap()
    }

    #[test]
    fn placement_matches_seed_hash_and_clamps_replication() {
        let p = DirectoryPlacement::new(nodes(4), None, 2);
        assert_eq!(p.num_shards(), 4);
        assert_eq!(p.replica_set(3), vec![NodeId(3), NodeId(0)]);
        // Replication larger than the cluster is clamped.
        let p1 = DirectoryPlacement::new(nodes(2), None, 5);
        assert_eq!(p1.replication(), 2);
        // The object hash is the seed's: initial primary == the old shard_node.
        let p = DirectoryPlacement::new(nodes(7), None, 3);
        let o = obj("some-object");
        let h = u64::from_le_bytes(o.0[..8].try_into().unwrap());
        assert_eq!(p.primary_for(o, &HashSet::new()), Some(NodeId((h % 7) as u32)));
    }

    #[test]
    fn view_primary_skips_failed_replicas_and_counts_epochs() {
        let mut v = PlacementView::new(DirectoryPlacement::new(nodes(4), None, 3));
        assert_eq!(v.primary(1), Some(NodeId(1)));
        assert_eq!(v.epoch(1), 0);
        v.on_peer_failed(NodeId(1));
        assert_eq!(v.primary(1), Some(NodeId(2)));
        assert_eq!(v.epoch(1), 1);
        v.on_peer_failed(NodeId(2));
        assert_eq!(v.primary(1), Some(NodeId(3)));
        assert_eq!(v.epoch(1), 2);
        v.on_peer_failed(NodeId(3));
        assert_eq!(v.primary(1), None, "all replicas dead");
        assert_eq!(v.epoch(1), 3);
    }

    #[test]
    fn readmitted_node_does_not_fail_back_but_leads_again_after_the_next_failure() {
        // Shard 0 on a 3-node cluster with r = 2: replicas [0, 1].
        let mut v = PlacementView::new(DirectoryPlacement::new(nodes(3), None, 2));
        assert_eq!(v.primary(0), Some(NodeId(0)));
        v.on_peer_failed(NodeId(0));
        assert_eq!(v.primary(0), Some(NodeId(1)));
        // Node 0 recovers: still not a candidate while resyncing.
        v.on_peer_recovered(NodeId(0));
        assert_eq!(v.primary(0), Some(NodeId(1)));
        // Re-admission: eligible again, but the cursor does not rewind — no fail-back.
        v.on_peer_readmitted(NodeId(0));
        assert_eq!(v.primary(0), Some(NodeId(1)), "no automatic fail-back");
        let e = v.epoch(0);
        // When the interim primary dies, leadership cycles back to the restarted node
        // with a strictly higher epoch.
        v.on_peer_failed(NodeId(1));
        assert_eq!(v.primary(0), Some(NodeId(0)), "restarted node leads again");
        assert!(v.epoch(0) > e);
    }

    #[test]
    fn service_applies_as_primary_ships_the_sequenced_log_and_confirms() {
        let cfg = HopliteConfig::small_for_tests();
        let ns = nodes(4);
        let mut svc = DirectoryService::new(NodeId(0), &cfg, &ns);
        let o = obj_in_shard(&svc, 0);
        let mut out = Vec::new();
        assert!(svc.handle_op(reg(o, 2), &mut out));
        assert_eq!(svc.locations(o).unwrap().len(), 1);
        // The op was shipped, sequenced, to the shard's backup (node 1).
        let (backup, seq) = out
            .iter()
            .find_map(|(to, m)| match m {
                Message::DirReplicate { shard: 0, epoch: 0, seq, .. } => Some((*to, *seq)),
                _ => None,
            })
            .expect("log shipment");
        assert_eq!(backup, NodeId(1));
        assert_eq!(seq, 1);
        // No confirm yet: the backup has not acked.
        assert!(!out.iter().any(|(_, m)| matches!(m, Message::DirConfirm { .. })));
        out.clear();
        svc.handle_ack(0, NodeId(1), 0, seq, &mut out);
        assert!(
            out.iter().any(|(to, m)| *to == NodeId(2)
                && matches!(m, Message::DirConfirm { kind: ConfirmKind::Location { .. }, .. })),
            "origin confirmed once the backup acked: {out:?}"
        );
    }

    #[test]
    fn non_primary_forwards_to_the_believed_primary() {
        let cfg = HopliteConfig::small_for_tests();
        let ns = nodes(4);
        let mut svc = DirectoryService::new(NodeId(3), &cfg, &ns);
        let o = obj_in_shard(&svc, 1);
        let mut out = Vec::new();
        let applied =
            svc.handle_op(DirOp::Subscribe { object: o, subscriber: NodeId(3) }, &mut out);
        assert!(!applied);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, NodeId(1));
        assert!(matches!(out[0].1, Message::DirSubscribe { .. }));
    }

    #[test]
    fn backup_promotes_when_the_primary_dies() {
        let cfg = HopliteConfig::small_for_tests();
        let ns = nodes(3);
        // Node 1 backs up shard 0 (replica set [0, 1]).
        let mut svc = DirectoryService::new(NodeId(1), &cfg, &ns);
        let o = obj_in_shard(&svc, 0);
        // Replicated state arrives from the primary before it dies, and is acked.
        let mut out = Vec::new();
        assert!(svc.handle_replicate(0, 0, 1, &reg(o, 2), NodeId(0), &mut out));
        assert!(out
            .iter()
            .any(|(to, m)| *to == NodeId(0) && matches!(m, Message::DirAck { seq: 1, .. })));
        out.clear();
        let promoted = svc.on_peer_failed(NodeId(0), &mut out);
        assert_eq!(promoted, vec![0]);
        assert_eq!(svc.primary_for(o), Some(NodeId(1)));
        assert_eq!(svc.replica(0).unwrap().epoch(), 1, "promotion at the failover epoch");
        // The replicated record survived the failover, and the promoted replica now
        // answers ops itself.
        let mut out = Vec::new();
        assert!(svc.handle_op(
            DirOp::Query { object: o, requester: NodeId(2), query_id: 1, exclude: vec![] },
            &mut out,
        ));
        assert!(svc.locations(o).unwrap().iter().any(|(n, _)| *n == NodeId(2)));
    }

    #[test]
    fn acked_prefix_alone_survives_failover_without_any_client_redrive() {
        // The acceptance scenario at the service level, clients fully gagged: ops are
        // applied at the primary, shipped, and acked; the primary then dies. The
        // promoted backup must hold every acked registration with no client re-drive
        // of any kind.
        let cfg = HopliteConfig::small_for_tests();
        let ns = nodes(3);
        let mut primary_svc = DirectoryService::new(NodeId(0), &cfg, &ns);
        let mut backup_svc = DirectoryService::new(NodeId(1), &cfg, &ns);
        // Five distinct objects, all in shard 0.
        let objects: Vec<ObjectId> = (0u64..)
            .map(|k| obj(&format!("gagged-{k}")))
            .filter(|&o| primary_svc.placement().shard_of(o) == 0)
            .take(5)
            .collect();
        let mut out = Vec::new();
        for (i, &o) in objects.iter().enumerate() {
            // Holders are third-party nodes, not the dying primary (a dead node's own
            // locations are purged by definition).
            assert!(primary_svc.handle_op(reg(o, 10 + i as u32), &mut out));
        }
        // Deliver the shipments to the backup (ack replies ignored — the primary is
        // about to die anyway).
        let mut acks = Vec::new();
        for (to, m) in out.drain(..) {
            if let Message::DirReplicate { shard, epoch, seq, op } = m {
                assert_eq!(to, NodeId(1));
                backup_svc.handle_replicate(shard as usize, epoch, seq, &op, NodeId(0), &mut acks);
            }
        }
        // The primary dies. Nobody re-drives anything.
        backup_svc.on_peer_failed(NodeId(0), &mut Vec::new());
        for &o in &objects {
            assert_eq!(
                backup_svc.locations(o).map(|l| l.len()),
                Some(1),
                "acked registration for {o:?} survived with clients gagged"
            );
        }
    }

    #[test]
    fn resync_completed_by_source_death_promotes_and_announces() {
        // Node 0 restarts and requests snapshots for both hosted shards; every
        // snapshot source dies before serving. The resync must still complete (via
        // the abandonment path), the re-admission announcement must become pending,
        // and — since node 0 is now each shard's only eligible replica — its
        // replicas must be *promoted*, not left as Backups the cluster routes to.
        let cfg = HopliteConfig::small_for_tests();
        let ns = nodes(3);
        let mut restarted = DirectoryService::new(NodeId(0), &cfg, &ns);
        let mut requests = Vec::new();
        assert!(restarted.begin_local_resync(&mut requests));
        let mut out = Vec::new();
        restarted.on_peer_failed(NodeId(1), &mut out); // shard 0's source
        assert!(restarted.is_resyncing(), "shard 2's snapshot still outstanding");
        assert!(!restarted.take_readmission_announcement());
        restarted.on_peer_failed(NodeId(2), &mut out); // shard 2's source
        assert!(!restarted.is_resyncing(), "no sources left: resync completes");
        assert!(restarted.take_readmission_announcement(), "DirResynced must be broadcast");
        assert!(!restarted.take_readmission_announcement(), "announced exactly once");
        // Both hosted shards are now led — and *servable* — by node 0.
        for shard in [0usize, 2] {
            let replica = restarted.replica(shard).unwrap();
            assert_eq!(replica.role(), ReplicaRole::Primary, "shard {shard} promoted");
            assert!(!replica.is_resyncing());
            let o = obj_in_shard(&restarted, shard);
            let mut ops_out = Vec::new();
            assert!(restarted.handle_op(reg(o, 5), &mut ops_out), "shard {shard} applies ops");
        }
    }

    #[test]
    fn restart_request_from_a_believed_primary_is_served_not_dropped() {
        // Node 0 crashes and restarts *before* the failure detector tells node 1.
        // Node 1 still believes node 0 leads shard 0, so node 0's restart snapshot
        // request must itself carry the news: node 1 folds the implied failure in,
        // promotes itself, and serves the snapshot — instead of silently dropping
        // the request and wedging node 0 in resync forever.
        let cfg = HopliteConfig::small_for_tests();
        let ns = nodes(3);
        let mut survivor = DirectoryService::new(NodeId(1), &cfg, &ns);
        let o = obj_in_shard(&survivor, 0);
        assert_eq!(survivor.primary_for(o), Some(NodeId(0)), "failure not yet detected");
        let mut out = Vec::new();
        survivor.handle_snapshot_request(0, NodeId(0), true, None, 0, 0, &mut out);
        assert_eq!(survivor.primary_for(o), Some(NodeId(1)), "implied failure folded in");
        assert_eq!(survivor.replica(0).unwrap().role(), ReplicaRole::Primary);
        assert!(
            out.iter().any(|(to, m)| *to == NodeId(0)
                && matches!(
                    m,
                    Message::DirSnapshotChunk { shard: 0, done: true, .. }
                        | Message::DirResyncDelta { shard: 0, done: true, .. }
                )),
            "resync served to the restarted node: {out:?}"
        );
        // The detector's own notices, arriving later, are harmless: the failure is
        // a no-op for an already-resyncing peer's shards' leadership.
        let promoted = survivor.on_peer_failed(NodeId(0), &mut out);
        assert!(promoted.is_empty(), "already promoted");
        // A *gap* catch-up request from a live backup must not depose anyone.
        let mut survivor2 = DirectoryService::new(NodeId(1), &cfg, &ns);
        let mut out2 = Vec::new();
        survivor2.handle_snapshot_request(1, NodeId(2), false, None, 0, 0, &mut out2);
        assert_eq!(survivor2.view().primary(2), Some(NodeId(2)), "live backup untouched");
    }

    #[test]
    fn readmission_returns_the_leaderless_shards_for_redrive() {
        // Shard 1 replicas [1, 2] on a 3-node cluster. Both die; the shard is
        // leaderless. When node 1 is readmitted (restarted + resynced from nothing),
        // the view must report shard 1 as regained so clients re-drive their
        // unconfirmed intents at it.
        let mut v = PlacementView::new(DirectoryPlacement::new(nodes(3), None, 2));
        v.on_peer_failed(NodeId(1));
        v.on_peer_failed(NodeId(2));
        assert_eq!(v.primary(1), None);
        let e = v.epoch(1);
        v.on_peer_recovered(NodeId(1));
        assert_eq!(v.primary(1), None, "resyncing nodes do not lead");
        let regained = v.on_peer_readmitted(NodeId(1));
        assert_eq!(regained, vec![1], "shard 1 went leaderless -> led");
        assert_eq!(v.primary(1), Some(NodeId(1)));
        assert!(v.epoch(1) > e);
        // A readmission that does not change any primary regains nothing.
        assert_eq!(v.on_peer_readmitted(NodeId(1)), Vec::<usize>::new());
    }

    #[test]
    fn recovering_replica_resyncs_and_is_readmitted() {
        let cfg = HopliteConfig::small_for_tests();
        let ns = nodes(3);
        // Shard 0: replicas [0, 1]; node 0 also backs up shard 2 (replicas [2, 0]).
        // Node 0 dies; node 1 promotes shard 0 and accumulates state; node 0 restarts
        // and resyncs both hosted shards.
        let mut survivor = DirectoryService::new(NodeId(1), &cfg, &ns);
        let mut other = DirectoryService::new(NodeId(2), &cfg, &ns);
        let mut out = Vec::new();
        survivor.on_peer_failed(NodeId(0), &mut out);
        other.on_peer_failed(NodeId(0), &mut out);
        let o = obj_in_shard(&survivor, 0);
        assert!(survivor.handle_op(reg(o, 2), &mut out));
        out.clear();

        // Node 0 restarts empty and begins recovery.
        let mut restarted = DirectoryService::new(NodeId(0), &cfg, &ns);
        let mut requests = Vec::new();
        assert!(restarted.begin_local_resync(&mut requests));
        assert!(restarted.is_resyncing());
        // While resyncing, the restarted node does not believe it leads shard 0.
        assert_ne!(restarted.primary_for(o), Some(NodeId(0)));

        // Route messages between the three services until the resync settles —
        // the stream shape (chunks, deltas, continuation requests) is the
        // services' own business here.
        let mut queue: Vec<(NodeId, NodeId, Message)> =
            requests.into_iter().map(|(to, m)| (NodeId(0), to, m)).collect();
        while let Some((from, to, msg)) = queue.pop() {
            let svc = match to {
                NodeId(0) => &mut restarted,
                NodeId(1) => &mut survivor,
                NodeId(2) => &mut other,
                other => panic!("unexpected recipient {other:?}"),
            };
            let mut out = Vec::new();
            match msg {
                Message::DirSnapshotRequest {
                    shard,
                    requester,
                    restart,
                    after,
                    have_epoch,
                    have_seq,
                    ..
                } => {
                    svc.handle_snapshot_request(
                        shard as usize,
                        requester,
                        restart,
                        after,
                        have_epoch,
                        have_seq,
                        &mut out,
                    );
                }
                Message::DirSnapshotChunk { shard, epoch, seq, rank, done, state } => {
                    svc.handle_snapshot_chunk(
                        shard as usize,
                        epoch,
                        seq,
                        rank as usize,
                        done,
                        &state,
                        from,
                        &mut out,
                    );
                }
                Message::DirResyncDelta { shard, epoch, ops, done } => {
                    svc.handle_resync_delta(shard as usize, epoch, &ops, done, from, &mut out);
                }
                Message::DirAck { shard, epoch, seq } => {
                    svc.handle_ack(shard as usize, from, epoch, seq, &mut out);
                }
                other => panic!("unexpected message {other:?}"),
            }
            queue.extend(out.into_iter().map(|(to2, m2)| (to, to2, m2)));
        }
        assert!(!restarted.is_resyncing(), "local resync completed");
        // The resynced replica holds the record registered while it was down.
        assert_eq!(restarted.locations(o).map(|l| l.len()), Some(1));
        // It adopted the survivor's rank cursor: no fail-back to itself.
        assert_eq!(restarted.primary_for(o), Some(NodeId(1)));
        // Survivor readmits node 0; when the survivor later dies, node 0 leads again
        // at a strictly higher epoch.
        survivor.on_peer_readmitted(NodeId(0), &mut Vec::new());
        restarted.on_peer_readmitted(NodeId(0), &mut Vec::new());
        let mut out2 = Vec::new();
        let promoted = restarted.on_peer_failed(NodeId(1), &mut out2);
        assert!(promoted.contains(&0), "restarted node serves as primary again");
        assert!(restarted.is_primary_for(o));
        assert!(restarted.replica(0).unwrap().epoch() >= 2);
    }

    // ---------------------------------------------------- chain replication ----

    fn chain_cfg() -> HopliteConfig {
        HopliteConfig { directory_replication: 3, ..HopliteConfig::small_for_tests() }
    }

    fn chain_svcs() -> Vec<DirectoryService> {
        let cfg = chain_cfg();
        let ns = nodes(3);
        (0..3).map(|i| DirectoryService::new(NodeId(i), &cfg, &ns)).collect()
    }

    /// Deliver `(from, to, msg)` triples between the services until the cluster goes
    /// quiet, dropping anything addressed to a `dead` node. Returns the `DirConfirm`s
    /// that reached their origins.
    fn pump(
        svcs: &mut [DirectoryService],
        queue: &mut Vec<(NodeId, NodeId, Message)>,
        dead: &[NodeId],
    ) -> Vec<(NodeId, Message)> {
        let mut confirms = Vec::new();
        while let Some((from, to, msg)) = queue.pop() {
            if dead.contains(&to) {
                continue;
            }
            let svc = &mut svcs[to.0 as usize];
            let mut out = Vec::new();
            match msg {
                Message::DirReplicate { shard, epoch, seq, op } => {
                    svc.handle_replicate(shard as usize, epoch, seq, &op, from, &mut out);
                }
                Message::DirAck { shard, epoch, seq } => {
                    svc.handle_ack(shard as usize, from, epoch, seq, &mut out);
                }
                Message::DirSnapshotRequest {
                    shard,
                    requester,
                    restart,
                    after,
                    have_epoch,
                    have_seq,
                    ..
                } => {
                    svc.handle_snapshot_request(
                        shard as usize,
                        requester,
                        restart,
                        after,
                        have_epoch,
                        have_seq,
                        &mut out,
                    );
                }
                Message::DirSnapshot { shard, epoch, seq, rank, state } => {
                    svc.handle_snapshot(
                        shard as usize,
                        epoch,
                        seq,
                        rank as usize,
                        &state,
                        from,
                        &mut out,
                    );
                }
                Message::DirSnapshotChunk { shard, epoch, seq, rank, done, state } => {
                    svc.handle_snapshot_chunk(
                        shard as usize,
                        epoch,
                        seq,
                        rank as usize,
                        done,
                        &state,
                        from,
                        &mut out,
                    );
                }
                Message::DirResyncDelta { shard, epoch, ops, done } => {
                    svc.handle_resync_delta(shard as usize, epoch, &ops, done, from, &mut out);
                }
                m @ Message::DirConfirm { .. } => {
                    confirms.push((to, m));
                    continue;
                }
                other => panic!("unroutable message in chain test: {other:?}"),
            }
            queue.extend(out.into_iter().map(|(to2, m2)| (to, to2, m2)));
        }
        confirms
    }

    #[test]
    fn view_chain_orders_members_from_the_primary_and_skips_dead() {
        let mut v = PlacementView::new(DirectoryPlacement::new(nodes(4), None, 3));
        assert_eq!(v.chain(1), vec![NodeId(1), NodeId(2), NodeId(3)]);
        v.on_peer_failed(NodeId(2));
        assert_eq!(v.chain(1), vec![NodeId(1), NodeId(3)]);
        v.on_peer_failed(NodeId(1));
        assert_eq!(v.chain(1), vec![NodeId(3)], "cursor advanced past the dead primary");
        // A recovered-but-resyncing member rejoins the chain (it is shipped to) but
        // does not lead it.
        v.on_peer_recovered(NodeId(2));
        assert_eq!(v.chain(1), vec![NodeId(3), NodeId(2)]);
    }

    #[test]
    fn chain_primary_ships_once_and_the_tail_ack_walks_back_up() {
        let mut svcs = chain_svcs();
        let o = obj_in_shard(&svcs[0], 0);
        let mut out = Vec::new();
        assert!(svcs[0].handle_op(reg(o, 1), &mut out));
        // Primary egress is a single stream to the chain head, not one per backup.
        let ships: Vec<&NodeId> = out
            .iter()
            .filter_map(|(to, m)| matches!(m, Message::DirReplicate { .. }).then_some(to))
            .collect();
        assert_eq!(ships, vec![&NodeId(1)], "one shipment, to the head: {out:?}");
        let mut queue: Vec<_> = out.drain(..).map(|(to, m)| (NodeId(0), to, m)).collect();
        let confirms = pump(&mut svcs, &mut queue, &[]);
        // The op reached both backups through the chain, the tail's ack was folded
        // upstream by the middle, and the origin got its confirm.
        assert_eq!(svcs[1].locations(o).map(|l| l.len()), Some(1), "head applied");
        assert_eq!(svcs[2].locations(o).map(|l| l.len()), Some(1), "tail applied");
        assert!(
            confirms.iter().any(|(to, _)| *to == NodeId(1)),
            "origin confirmed after the cumulative ack: {confirms:?}"
        );
        assert_eq!(svcs[1].take_chain_ack_relays(), 1, "middle relayed the tail's ack");
        assert_eq!(svcs[0].replica(0).unwrap().unacked_len(), 0, "primary log trimmed");
    }

    #[test]
    fn chain_disabled_falls_back_to_star_fanout() {
        let cfg = HopliteConfig { directory_chain_replication: false, ..chain_cfg() };
        let ns = nodes(3);
        let mut p = DirectoryService::new(NodeId(0), &cfg, &ns);
        let o = obj_in_shard(&p, 0);
        let mut out = Vec::new();
        assert!(p.handle_op(reg(o, 1), &mut out));
        let mut ships: Vec<NodeId> = out
            .iter()
            .filter_map(|(to, m)| matches!(m, Message::DirReplicate { .. }).then_some(*to))
            .collect();
        ships.sort_by_key(|n| n.0);
        assert_eq!(ships, vec![NodeId(1), NodeId(2)], "star ships to every live backup");
    }

    #[test]
    fn chain_tail_death_unsticks_the_cumulative_ack() {
        let mut svcs = chain_svcs();
        let o = obj_in_shard(&svcs[0], 0);
        let mut out = Vec::new();
        assert!(svcs[0].handle_op(reg(o, 1), &mut out));
        // Deliver the shipment to the head, which relays it to the tail — but the
        // tail dies before acking (its relay is dropped).
        let mut queue: Vec<_> = out.drain(..).map(|(to, m)| (NodeId(0), to, m)).collect();
        let confirms = pump(&mut svcs, &mut queue, &[NodeId(2)]);
        assert!(confirms.is_empty(), "no cumulative ack: no confirm yet");
        assert_eq!(svcs[0].replica(0).unwrap().unacked_len(), 1, "op stuck unacked");
        // Survivors digest the failure: the head (now the tail) re-anchors the ack
        // flow with its applied prefix, and the primary's re-splice re-ships.
        let (head, rest) = svcs.split_at_mut(1);
        let mut q0 = Vec::new();
        head[0].on_peer_failed(NodeId(2), &mut q0);
        let mut q1 = Vec::new();
        rest[0].on_peer_failed(NodeId(2), &mut q1);
        assert!(
            q1.iter()
                .any(|(to, m)| *to == NodeId(0) && matches!(m, Message::DirAck { seq: 1, .. })),
            "surviving member re-acks its applied prefix upstream: {q1:?}"
        );
        let mut queue: Vec<_> = q0
            .into_iter()
            .map(|(to, m)| (NodeId(0), to, m))
            .chain(q1.into_iter().map(|(to, m)| (NodeId(1), to, m)))
            .collect();
        let confirms = pump(&mut svcs, &mut queue, &[NodeId(2)]);
        assert!(!confirms.is_empty(), "confirm released after the re-anchored ack");
        assert_eq!(svcs[0].replica(0).unwrap().unacked_len(), 0);
    }

    #[test]
    fn chain_head_death_resplices_and_reships_the_unacked_suffix() {
        let mut svcs = chain_svcs();
        let o = obj_in_shard(&svcs[0], 0);
        let mut out = Vec::new();
        // Holder 2: a record held by the dying node itself would be purged with it.
        assert!(svcs[0].handle_op(reg(o, 2), &mut out));
        // The head dies with the shipment in flight: nothing reached the tail.
        out.clear();
        let mut q0 = Vec::new();
        svcs[0].on_peer_failed(NodeId(1), &mut q0);
        assert!(
            q0.iter().any(
                |(to, m)| *to == NodeId(2) && matches!(m, Message::DirReplicate { seq: 1, .. })
            ),
            "primary re-ships the unacked suffix to the new head: {q0:?}"
        );
        let mut q2 = Vec::new();
        svcs[2].on_peer_failed(NodeId(1), &mut q2);
        let mut queue: Vec<_> = q0
            .into_iter()
            .map(|(to, m)| (NodeId(0), to, m))
            .chain(q2.into_iter().map(|(to, m)| (NodeId(2), to, m)))
            .collect();
        let confirms = pump(&mut svcs, &mut queue, &[NodeId(1)]);
        // Zero lost location records: the surviving backup holds the op, acked
        // straight to the primary (the two-member chain has no middle).
        assert_eq!(svcs[2].locations(o).map(|l| l.len()), Some(1));
        assert!(!confirms.is_empty(), "op confirmed after the re-splice");
        assert_eq!(svcs[0].replica(0).unwrap().unacked_len(), 0);
    }

    #[test]
    fn chain_readmission_resplices_the_restarted_member_back_in() {
        let mut svcs = chain_svcs();
        let o1 = obj_in_shard(&svcs[0], 0);
        // Op 1 flows through the intact chain (holder 2: a record held by the node
        // that dies below would be purged with it).
        let mut out = Vec::new();
        assert!(svcs[0].handle_op(reg(o1, 2), &mut out));
        let mut queue: Vec<_> = out.drain(..).map(|(to, m)| (NodeId(0), to, m)).collect();
        pump(&mut svcs, &mut queue, &[]);
        // The head dies; op 2 is applied but its re-spliced shipment is lost too
        // (the network drops everything while the failure settles).
        let mut scratch = Vec::new();
        svcs[0].on_peer_failed(NodeId(1), &mut scratch);
        svcs[2].on_peer_failed(NodeId(1), &mut scratch);
        scratch.clear();
        let o2 = (0u64..)
            .map(|k| obj(&format!("chain-readmit-{k}")))
            .find(|&o| svcs[0].placement().shard_of(o) == 0)
            .unwrap();
        assert!(svcs[0].handle_op(reg(o2, 2), &mut scratch));
        scratch.clear();
        assert_eq!(svcs[0].replica(0).unwrap().unacked_len(), 1, "op 2 in flight");
        // Node 1 comes back (its replica state intact through seq 1) and is
        // re-admitted: the primary re-splices it in as the head and re-ships the
        // unacked suffix, which then relays down to the tail and gets acked back.
        for svc in &mut svcs {
            svc.on_peer_recovered(NodeId(1));
        }
        let mut q0 = Vec::new();
        svcs[0].on_peer_readmitted(NodeId(1), &mut q0);
        assert!(
            q0.iter().any(
                |(to, m)| *to == NodeId(1) && matches!(m, Message::DirReplicate { seq: 2, .. })
            ),
            "suffix re-shipped to the re-admitted head: {q0:?}"
        );
        let mut q1 = Vec::new();
        svcs[1].on_peer_readmitted(NodeId(1), &mut q1);
        let mut q2 = Vec::new();
        svcs[2].on_peer_readmitted(NodeId(1), &mut q2);
        let mut queue: Vec<_> = q0
            .into_iter()
            .map(|(to, m)| (NodeId(0), to, m))
            .chain(q1.into_iter().map(|(to, m)| (NodeId(1), to, m)))
            .chain(q2.into_iter().map(|(to, m)| (NodeId(2), to, m)))
            .collect();
        let confirms = pump(&mut svcs, &mut queue, &[]);
        // Every member converged on both records; op 2 is confirmed.
        for svc in &svcs {
            assert_eq!(svc.locations(o1).map(|l| l.len()), Some(1));
            assert_eq!(svc.locations(o2).map(|l| l.len()), Some(1));
        }
        assert!(confirms.iter().any(|(to, _)| *to == NodeId(2)), "op 2 confirmed: {confirms:?}");
        assert_eq!(svcs[0].replica(0).unwrap().unacked_len(), 0);
    }

    // --------------------------------------------------- chunked/delta resync ----

    /// Route a single message to its recipient (services indexed by node id) and
    /// return the resulting sends as `(from, to, msg)` triples. `DirConfirm`s are
    /// swallowed — the resync tests don't assert on client confirms.
    fn deliver(
        svcs: &mut [DirectoryService],
        from: NodeId,
        to: NodeId,
        msg: Message,
    ) -> Vec<(NodeId, NodeId, Message)> {
        if matches!(
            msg,
            Message::DirConfirm { .. } | Message::DirPublish { .. } | Message::DirQueryReply { .. }
        ) {
            return Vec::new();
        }
        let svc = &mut svcs[to.0 as usize];
        let mut out = Vec::new();
        match msg {
            Message::DirReplicate { shard, epoch, seq, op } => {
                svc.handle_replicate(shard as usize, epoch, seq, &op, from, &mut out);
            }
            Message::DirAck { shard, epoch, seq } => {
                svc.handle_ack(shard as usize, from, epoch, seq, &mut out);
            }
            Message::DirSnapshotRequest {
                shard,
                requester,
                restart,
                after,
                have_epoch,
                have_seq,
                ..
            } => {
                svc.handle_snapshot_request(
                    shard as usize,
                    requester,
                    restart,
                    after,
                    have_epoch,
                    have_seq,
                    &mut out,
                );
            }
            Message::DirSnapshotChunk { shard, epoch, seq, rank, done, state } => {
                svc.handle_snapshot_chunk(
                    shard as usize,
                    epoch,
                    seq,
                    rank as usize,
                    done,
                    &state,
                    from,
                    &mut out,
                );
            }
            Message::DirResyncDelta { shard, epoch, ops, done } => {
                svc.handle_resync_delta(shard as usize, epoch, &ops, done, from, &mut out);
            }
            Message::DirConfirm { .. } => {}
            other => panic!("unroutable message in resync test: {other:?}"),
        }
        out.into_iter().map(|(to2, m2)| (to, to2, m2)).collect()
    }

    #[test]
    fn gap_resync_uses_the_delta_path_instead_of_shipping_state() {
        // Shard 0 replicas [0, 1] on a 3-node cluster: node 0 primary, node 1 backup.
        let cfg = HopliteConfig::small_for_tests();
        let ns = nodes(3);
        let mut svcs: Vec<DirectoryService> =
            (0..2).map(|i| DirectoryService::new(NodeId(i), &cfg, &ns)).collect();
        let objects: Vec<ObjectId> = (0u64..)
            .map(|k| obj(&format!("delta-{k}")))
            .filter(|&o| svcs[0].placement().shard_of(o) == 0)
            .take(4)
            .collect();
        // Op 1 replicates normally and is acked.
        let mut out = Vec::new();
        assert!(svcs[0].handle_op(reg(objects[0], 2), &mut out));
        let mut queue: Vec<_> = out.drain(..).map(|(to, m)| (NodeId(0), to, m)).collect();
        while let Some((from, to, msg)) = queue.pop() {
            queue.extend(deliver(&mut svcs, from, to, msg));
        }
        // Ops 2 and 3 are applied at the primary but their shipments are lost.
        assert!(svcs[0].handle_op(reg(objects[1], 2), &mut out));
        assert!(svcs[0].handle_op(reg(objects[2], 2), &mut out));
        out.clear();
        // Op 4's shipment arrives and exposes the gap.
        assert!(svcs[0].handle_op(reg(objects[3], 2), &mut out));
        let (seq4, op4) = out
            .iter()
            .find_map(|(_, m)| match m {
                Message::DirReplicate { seq, op, .. } => Some((*seq, op.clone())),
                _ => None,
            })
            .expect("op 4 shipped");
        let mut req_out = Vec::new();
        svcs[1].handle_replicate(0, 0, seq4, &op4, NodeId(0), &mut req_out);
        let (have_epoch, have_seq) = req_out
            .iter()
            .find_map(|(to, m)| match m {
                Message::DirSnapshotRequest { shard: 0, after, have_epoch, have_seq, .. } => {
                    assert_eq!(*to, NodeId(0));
                    assert!(after.is_none(), "fresh stream, no cursor");
                    Some((*have_epoch, *have_seq))
                }
                _ => None,
            })
            .expect("gap triggers a resync request");
        assert_eq!(have_seq, 1, "backup applied only op 1");
        // The primary's retained suffix covers the gap: it replays ops, ships no
        // state, and the backup converges and acks the full prefix.
        let mut frames = Vec::new();
        svcs[0].handle_snapshot_request(
            0,
            NodeId(1),
            false,
            None,
            have_epoch,
            have_seq,
            &mut frames,
        );
        let (chunks, bytes, deltas) = svcs[0].take_resync_counters();
        assert_eq!((chunks, bytes), (0, 0), "no state chunks shipped");
        assert_eq!(deltas, 1, "served as a delta");
        let mut completed = false;
        let mut queue: Vec<_> = frames.into_iter().map(|(to, m)| (NodeId(0), to, m)).collect();
        while let Some((from, to, msg)) = queue.pop() {
            if to == NodeId(1) {
                if let Message::DirResyncDelta { shard: 0, ref ops, done, .. } = msg {
                    assert!(done, "a four-op gap fits one frame");
                    assert_eq!(ops.first().map(|(s, _)| *s), Some(2), "replay resumes past op 1");
                }
            }
            if matches!(msg, Message::DirAck { shard: 0, seq: 4, .. }) && to == NodeId(0) {
                completed = true;
            }
            queue.extend(deliver(&mut svcs, from, to, msg));
        }
        assert!(completed, "backup acked the replayed prefix");
        assert!(!svcs[1].replica(0).unwrap().is_resyncing());
        for &o in &objects {
            assert_eq!(svcs[1].locations(o).map(|l| l.len()), Some(1), "record replayed");
        }
    }

    #[test]
    fn chunked_resync_streams_bounded_chunks_and_reships_dirty_entries() {
        // Two nodes, r = 2: shard 0 replicas [0, 1], shard 1 replicas [1, 0]. A tiny
        // chunk budget forces a long stream so live mutations can land mid-flight.
        let cfg = HopliteConfig { snapshot_chunk_bytes: 256, ..HopliteConfig::small_for_tests() };
        let ns = nodes(2);
        let mut svcs: Vec<DirectoryService> =
            (0..2).map(|i| DirectoryService::new(NodeId(i), &cfg, &ns)).collect();
        // Node 0 dies; node 1 promotes shard 0 (epoch 1) and leads everything.
        svcs[1].on_peer_failed(NodeId(0), &mut Vec::new());
        let mut objects = Vec::new();
        for shard in 0..2usize {
            objects.extend(
                (0u64..)
                    .map(|k| obj(&format!("scale-{shard}-{k}")))
                    .filter(|&o| svcs[1].placement().shard_of(o) == shard)
                    .take(20),
            );
        }
        let mut scratch = Vec::new();
        for &o in &objects {
            assert!(svcs[1].handle_op(reg(o, 1), &mut scratch));
        }
        scratch.clear();
        // Node 0 restarts empty. Shard 0 resyncs via chunks (its epoch moved), shard
        // 1 via delta replay (same epoch, retained log covers the whole history).
        svcs[0] = DirectoryService::new(NodeId(0), &cfg, &ns);
        let mut requests = Vec::new();
        assert!(svcs[0].begin_local_resync(&mut requests));
        let mut queue: Vec<(NodeId, NodeId, Message)> =
            requests.into_iter().map(|(to, m)| (NodeId(0), to, m)).collect();
        let mut victim: Option<ObjectId> = None;
        let mut chunks_seen = 0u64;
        while let Some((from, to, msg)) = queue.pop() {
            match &msg {
                Message::DirSnapshotChunk { state, done, .. } => {
                    chunks_seen += 1;
                    assert!(
                        state.wire_size() <= 256 || state.entries.len() == 1,
                        "chunk over budget: {} bytes, {} entries",
                        state.wire_size(),
                        state.entries.len()
                    );
                    if victim.is_none() {
                        // First chunk in flight: mutate one of its entries at the
                        // source while the stream is still running. The entry went
                        // stale behind the cursor, so it must be re-shipped.
                        assert!(!done, "20 objects cannot fit one 256-byte chunk");
                        let object = state.entries.first().expect("chunk carries entries").object;
                        victim = Some(object);
                        let mut live = Vec::new();
                        assert!(svcs[1].handle_op(
                            DirOp::Subscribe { object, subscriber: NodeId(1) },
                            &mut live,
                        ));
                        queue.extend(live.into_iter().map(|(to2, m2)| (NodeId(1), to2, m2)));
                    }
                }
                Message::DirResyncDelta { ops, .. } => {
                    assert!(ops.len() <= 1, "two replayed ops never fit a 256-byte frame");
                }
                _ => {}
            }
            queue.extend(deliver(&mut svcs, from, to, msg));
        }
        assert!(chunks_seen >= 8, "20 entries at 3 per chunk plus a dirty flush: {chunks_seen}");
        let (chunks, bytes, deltas) = svcs[1].take_resync_counters();
        assert_eq!(chunks, chunks_seen);
        assert!(bytes > 0);
        assert_eq!(deltas, 1, "shard 1 resynced as a delta");
        // The restarted node converged on every record...
        assert!(!svcs[0].is_resyncing());
        for &o in &objects {
            assert_eq!(svcs[0].locations(o).map(|l| l.len()), Some(1));
        }
        // ...including the mutation that landed mid-stream: the subscription exists
        // only in the re-shipped copy of the entry (the buffered live shipment was
        // superseded by the stream's final sequence number).
        let victim = victim.expect("a chunk was served");
        let shard = svcs[0].placement().shard_of(victim);
        assert_eq!(
            svcs[0].replica(shard).unwrap().shard().subscriber_count(victim),
            1,
            "stale streamed entry was re-shipped with its new subscriber"
        );
    }

    #[test]
    fn chunk_stream_resumes_from_the_cursor_when_the_source_dies() {
        // Three nodes, r = 3 (star fan-out), zero log retention: a restarted node
        // can only be served state chunks, never a delta.
        let cfg = HopliteConfig {
            directory_replication: 3,
            directory_chain_replication: false,
            directory_log_retention: 0,
            snapshot_chunk_bytes: 256,
            ..HopliteConfig::small_for_tests()
        };
        let ns = nodes(3);
        let mut svcs: Vec<DirectoryService> =
            (0..3).map(|i| DirectoryService::new(NodeId(i), &cfg, &ns)).collect();
        let objects: Vec<ObjectId> = (0u64..)
            .map(|k| obj(&format!("resume-{k}")))
            .filter(|&o| svcs[0].placement().shard_of(o) == 0)
            .take(18)
            .collect();
        // Populate shard 0 through its primary; both backups apply and ack, so the
        // primary's log is fully trimmed (and nothing is retained).
        let mut out = Vec::new();
        for &o in &objects {
            assert!(svcs[0].handle_op(reg(o, 2), &mut out));
            let mut queue: Vec<_> = out.drain(..).map(|(to, m)| (NodeId(0), to, m)).collect();
            while let Some((from, to, msg)) = queue.pop() {
                queue.extend(deliver(&mut svcs, from, to, msg));
            }
        }
        // Node 1 dies and restarts empty; survivors digest the failure.
        svcs[0].on_peer_failed(NodeId(1), &mut out);
        svcs[2].on_peer_failed(NodeId(1), &mut out);
        out.clear();
        svcs[1] = DirectoryService::new(NodeId(1), &cfg, &ns);
        let mut requests = Vec::new();
        assert!(svcs[1].begin_local_resync(&mut requests));
        // Run the resync until two chunks of shard 0 (served by node 0, the
        // primary) have been installed, then kill node 0 mid-stream.
        let mut queue: Vec<(NodeId, NodeId, Message)> =
            requests.into_iter().map(|(to, m)| (NodeId(1), to, m)).collect();
        let mut installed = 0;
        while installed < 2 {
            let (from, to, msg) = queue.pop().expect("shard 0 stream still in flight");
            if to == NodeId(1) && matches!(msg, Message::DirSnapshotChunk { shard: 0, .. }) {
                installed += 1;
            }
            queue.extend(deliver(&mut svcs, from, to, msg));
        }
        let cursor = svcs[1].replica(0).unwrap().resync_cursor().expect("mid-stream cursor");
        // The crash drops everything in flight to or from node 0.
        queue.retain(|(from, to, _)| *from != NodeId(0) && *to != NodeId(0));
        let mut q1 = Vec::new();
        svcs[1].on_peer_failed(NodeId(0), &mut q1);
        let mut q2 = Vec::new();
        svcs[2].on_peer_failed(NodeId(0), &mut q2);
        // The stranded stream re-targets the new primary (node 2) and asks it to
        // resume from the installed cursor, not from scratch.
        let resumed_after = q1
            .iter()
            .find_map(|(to, m)| match m {
                Message::DirSnapshotRequest { shard: 0, after, .. } => {
                    assert_eq!(*to, NodeId(2));
                    Some(*after)
                }
                _ => None,
            })
            .expect("stranded resync re-targeted");
        assert_eq!(resumed_after, Some(cursor), "resume from the cursor");
        queue.extend(q1.into_iter().map(|(to, m)| (NodeId(1), to, m)));
        queue.extend(q2.into_iter().map(|(to, m)| (NodeId(2), to, m)));
        let mut resumed_entries = 0;
        while let Some((from, to, msg)) = queue.pop() {
            if to == NodeId(0) {
                continue;
            }
            if let Message::DirSnapshotChunk { shard: 0, ref state, .. } = msg {
                for e in &state.entries {
                    assert!(e.object > cursor, "already-installed prefix re-shipped");
                    resumed_entries += 1;
                }
            }
            queue.extend(deliver(&mut svcs, from, to, msg));
        }
        // Two 3-entry chunks landed before the crash; node 2 shipped exactly the
        // remaining twelve entries and the restarted replica converged.
        assert_eq!(resumed_entries, objects.len() - 6);
        assert!(!svcs[1].is_resyncing(), "resync completed at the new source");
        for &o in &objects {
            assert_eq!(svcs[1].locations(o).map(|l| l.len()), Some(1));
        }
    }
}
