//! Shard placement and the per-node directory service.
//!
//! [`DirectoryPlacement`] is the pure, cluster-wide map from objects to shards and
//! from shards to replica sets: shard `s` lives on nodes `s % n, (s+1) % n, ...`
//! (`directory_replication` of them), and the *primary* is the first replica the
//! failure detector has not declared dead. Because every node runs the same
//! deterministic computation over the same failure notifications, all survivors agree
//! on the current primary without any coordination round.
//!
//! Placement is **failure-monotonic**: a node that recovers is not restored as a
//! primary candidate (its replica state is empty; failing back would lose the shard).
//! Re-integrating recovered replicas via state transfer is future work — see
//! `ROADMAP.md`.
//!
//! [`DirectoryService`] is the server half living inside each node: the shard
//! replicas this node hosts, op routing (apply as primary / forward as backup), log
//! shipping to backups, and epoch-stamped promotion when a primary dies (§3.5).

use std::collections::{BTreeMap, HashSet};

use crate::config::HopliteConfig;
use crate::object::{NodeId, ObjectId, ObjectStatus};
use crate::protocol::{DirOp, Message};

use super::replication::{ReplicaRole, ShardReplica};
use super::shard::DirectoryShard;

/// The static map from objects to shards and shards to replica sets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DirectoryPlacement {
    nodes: Vec<NodeId>,
    num_shards: usize,
    replication: usize,
}

impl DirectoryPlacement {
    /// Build the placement for a cluster. `num_shards` defaults to one shard per node
    /// and `replication` is clamped to the cluster size.
    pub fn new(nodes: Vec<NodeId>, num_shards: Option<usize>, replication: usize) -> Self {
        assert!(!nodes.is_empty(), "placement needs at least one node");
        let num_shards = num_shards.unwrap_or(nodes.len()).max(1);
        let replication = replication.clamp(1, nodes.len());
        DirectoryPlacement { nodes, num_shards, replication }
    }

    /// Build the placement from a node's configuration.
    pub fn from_config(cfg: &HopliteConfig, nodes: &[NodeId]) -> Self {
        DirectoryPlacement::new(nodes.to_vec(), cfg.directory_shards, cfg.directory_replication)
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// Number of replicas per shard.
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// The shard responsible for `object` (same hash the unreplicated seed used, so
    /// the initial primary of an object's shard is `ClusterView::shard_node`).
    pub fn shard_of(&self, object: ObjectId) -> usize {
        let h = u64::from_le_bytes(object.0[..8].try_into().expect("object id width"));
        (h % self.num_shards as u64) as usize
    }

    /// The replica set of a shard, primary-candidate order: the node owning the shard
    /// first, then its successors on the ring.
    pub fn replica_set(&self, shard: usize) -> Vec<NodeId> {
        let n = self.nodes.len();
        (0..self.replication).map(|i| self.nodes[(shard + i) % n]).collect()
    }

    /// Whether `node` hosts a replica of `shard`.
    pub fn hosts(&self, node: NodeId, shard: usize) -> bool {
        self.replica_set(shard).contains(&node)
    }

    /// The current primary of a shard: the first replica not in `failed`. `None` when
    /// every replica is dead (the shard's metadata is lost).
    pub fn primary(&self, shard: usize, failed: &HashSet<NodeId>) -> Option<NodeId> {
        self.replica_set(shard).into_iter().find(|n| !failed.contains(n))
    }

    /// The current primary of the shard responsible for `object`.
    pub fn primary_for(&self, object: ObjectId, failed: &HashSet<NodeId>) -> Option<NodeId> {
        self.primary(self.shard_of(object), failed)
    }

    /// Shards for which `node` is a replica.
    pub fn shards_hosted_by(&self, node: NodeId) -> Vec<usize> {
        (0..self.num_shards).filter(|&s| self.hosts(node, s)).collect()
    }
}

/// The directory server half of one node: every shard replica it hosts, plus the
/// routing and promotion logic around them.
#[derive(Debug)]
pub struct DirectoryService {
    me: NodeId,
    placement: DirectoryPlacement,
    failed: HashSet<NodeId>,
    /// Shard index -> this node's replica of it. `BTreeMap` so iteration order (and
    /// therefore promotion order on failure) is deterministic.
    replicas: BTreeMap<usize, ShardReplica>,
}

impl DirectoryService {
    /// Create the service for node `me`, instantiating a replica for every shard the
    /// placement assigns it.
    pub fn new(me: NodeId, cfg: &HopliteConfig, nodes: &[NodeId]) -> Self {
        let placement = DirectoryPlacement::from_config(cfg, nodes);
        let replicas = placement
            .shards_hosted_by(me)
            .into_iter()
            .map(|shard| {
                let role = if placement.replica_set(shard)[0] == me {
                    ReplicaRole::Primary
                } else {
                    ReplicaRole::Backup
                };
                (shard, ShardReplica::new(DirectoryShard::new(shard, cfg.clone()), role))
            })
            .collect();
        DirectoryService { me, placement, failed: HashSet::new(), replicas }
    }

    /// The placement in effect.
    pub fn placement(&self) -> &DirectoryPlacement {
        &self.placement
    }

    /// The current primary of the shard responsible for `object`, in this node's view.
    pub fn primary_for(&self, object: ObjectId) -> Option<NodeId> {
        self.placement.primary_for(object, &self.failed)
    }

    /// Whether this node believes it is the primary for `object`'s shard.
    pub fn is_primary_for(&self, object: ObjectId) -> bool {
        self.primary_for(object) == Some(self.me)
    }

    /// This node's replica of `shard`, if it hosts one.
    pub fn replica(&self, shard: usize) -> Option<&ShardReplica> {
        self.replicas.get(&shard)
    }

    /// Known locations of `object` in this node's replica of its shard; `None` when
    /// this node hosts no replica of that shard.
    pub fn locations(&self, object: ObjectId) -> Option<Vec<(NodeId, ObjectStatus)>> {
        self.replicas.get(&self.placement.shard_of(object)).map(|r| r.locations(object))
    }

    /// Route one client directory op: apply it if this node is the shard's primary
    /// (emitting replies and log-shipping the op to the backups), forward it to the
    /// believed primary otherwise. Ops for a shard whose every replica died are
    /// dropped — that metadata is gone.
    pub fn handle_op(&mut self, op: DirOp, out: &mut Vec<(NodeId, Message)>) -> bool {
        let shard = self.placement.shard_of(op.object());
        match self.placement.primary(shard, &self.failed) {
            Some(primary) if primary == self.me => {
                let replica = self.replicas.get_mut(&shard).expect("primary hosts its shard");
                replica.apply_primary(&op, out);
                let epoch = replica.epoch();
                for backup in self.placement.replica_set(shard) {
                    if backup != self.me && !self.failed.contains(&backup) {
                        out.push((
                            backup,
                            Message::DirReplicate { shard: shard as u64, epoch, op: op.clone() },
                        ));
                    }
                }
                true
            }
            Some(primary) => {
                // A client with a staler failure view than ours (or a scheduling race
                // around a promotion) sent the op here; pass it along.
                out.push((primary, op.into_message()));
                false
            }
            None => false,
        }
    }

    /// Replay an op shipped by a shard's primary into this node's backup replica.
    /// Ops for shards this node does not host (a stale primary's view) and ops from a
    /// deposed primary's epoch are discarded.
    pub fn handle_replicate(&mut self, shard: usize, epoch: u64, op: &DirOp) -> bool {
        match self.replicas.get_mut(&shard) {
            Some(replica) => replica.apply_replicated(epoch, op),
            None => false,
        }
    }

    /// Digest a peer failure: purge the dead node from every hosted replica, and
    /// promote this node's replicas wherever it just became the first surviving
    /// member of a replica set. Returns the shards promoted here (for tracing).
    pub fn on_peer_failed(&mut self, peer: NodeId) -> Vec<usize> {
        self.failed.insert(peer);
        let mut promoted = Vec::new();
        for (&shard, replica) in self.replicas.iter_mut() {
            replica.node_failed(peer);
            if self.placement.primary(shard, &self.failed) == Some(self.me)
                && replica.role() == ReplicaRole::Backup
            {
                // Promotion epoch = this replica's rank in the replica set: every
                // ranked predecessor is dead (that is what made us primary) and rank
                // k-1 never shipped above epoch k-1, so rank k is strictly fresher
                // than anything a deposed predecessor still has in flight.
                let rank = self
                    .placement
                    .replica_set(shard)
                    .iter()
                    .position(|&n| n == self.me)
                    .expect("hosted shards include this node") as u64;
                replica.promote_to(rank);
                promoted.push(shard);
            }
        }
        promoted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    fn obj(name: &str) -> ObjectId {
        ObjectId::from_name(name)
    }

    #[test]
    fn placement_matches_seed_hash_and_clamps_replication() {
        let p = DirectoryPlacement::new(nodes(4), None, 2);
        assert_eq!(p.num_shards(), 4);
        assert_eq!(p.replica_set(3), vec![NodeId(3), NodeId(0)]);
        // Replication larger than the cluster is clamped.
        let p1 = DirectoryPlacement::new(nodes(2), None, 5);
        assert_eq!(p1.replication(), 2);
        // The object hash is the seed's: initial primary == the old shard_node.
        let p = DirectoryPlacement::new(nodes(7), None, 3);
        let o = obj("some-object");
        let h = u64::from_le_bytes(o.0[..8].try_into().unwrap());
        assert_eq!(p.primary_for(o, &HashSet::new()), Some(NodeId((h % 7) as u32)));
    }

    #[test]
    fn primary_skips_failed_replicas() {
        let p = DirectoryPlacement::new(nodes(4), None, 3);
        let mut failed = HashSet::new();
        assert_eq!(p.primary(1, &failed), Some(NodeId(1)));
        failed.insert(NodeId(1));
        assert_eq!(p.primary(1, &failed), Some(NodeId(2)));
        failed.insert(NodeId(2));
        assert_eq!(p.primary(1, &failed), Some(NodeId(3)));
        failed.insert(NodeId(3));
        assert_eq!(p.primary(1, &failed), None, "all replicas dead");
    }

    #[test]
    fn service_applies_as_primary_and_ships_the_log() {
        let cfg = HopliteConfig::small_for_tests();
        let ns = nodes(4);
        let mut svc = DirectoryService::new(NodeId(0), &cfg, &ns);
        // Find an object whose shard is primaried by node 0.
        let o = (0u64..)
            .map(|k| obj(&format!("svc-{k}")))
            .find(|&o| svc.primary_for(o) == Some(NodeId(0)))
            .unwrap();
        let mut out = Vec::new();
        let applied = svc.handle_op(
            DirOp::Register {
                object: o,
                holder: NodeId(2),
                status: ObjectStatus::Complete,
                size: 10,
            },
            &mut out,
        );
        assert!(applied);
        assert_eq!(svc.locations(o).unwrap().len(), 1);
        // The op was shipped to the one backup of the shard.
        let shard = svc.placement().shard_of(o) as u64;
        assert!(out.iter().any(
            |(_, m)| matches!(m, Message::DirReplicate { shard: s, epoch: 0, .. } if *s == shard)
        ));
    }

    #[test]
    fn non_primary_forwards_to_the_believed_primary() {
        let cfg = HopliteConfig::small_for_tests();
        let ns = nodes(4);
        let mut svc = DirectoryService::new(NodeId(3), &cfg, &ns);
        let o = (0u64..)
            .map(|k| obj(&format!("fwd-{k}")))
            .find(|&o| svc.primary_for(o) == Some(NodeId(1)))
            .unwrap();
        let mut out = Vec::new();
        let applied =
            svc.handle_op(DirOp::Subscribe { object: o, subscriber: NodeId(3) }, &mut out);
        assert!(!applied);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, NodeId(1));
        assert!(matches!(out[0].1, Message::DirSubscribe { .. }));
    }

    #[test]
    fn backup_promotes_when_the_primary_dies() {
        let cfg = HopliteConfig::small_for_tests();
        let ns = nodes(3);
        // Node 1 backs up shard 0 (replica set [0, 1]).
        let mut svc = DirectoryService::new(NodeId(1), &cfg, &ns);
        let o = (0u64..)
            .map(|k| obj(&format!("promo-{k}")))
            .find(|&o| svc.placement().shard_of(o) == 0)
            .unwrap();
        // Replicated state arrives from the primary before it dies.
        assert!(svc.handle_replicate(
            0,
            0,
            &DirOp::Register {
                object: o,
                holder: NodeId(2),
                status: ObjectStatus::Complete,
                size: 64,
            },
        ));
        let promoted = svc.on_peer_failed(NodeId(0));
        assert_eq!(promoted, vec![0]);
        assert_eq!(svc.primary_for(o), Some(NodeId(1)));
        // The replicated record survived the failover, and the promoted replica now
        // answers ops itself.
        let mut out = Vec::new();
        assert!(svc.handle_op(
            DirOp::Query { object: o, requester: NodeId(2), query_id: 1, exclude: vec![] },
            &mut out,
        ));
        assert!(svc.locations(o).unwrap().iter().any(|(n, _)| *n == NodeId(2)));
    }
}
