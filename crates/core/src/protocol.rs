//! Wire protocol of the Hoplite control and data planes, and the effect type through
//! which the sans-IO node state machine talks to its driver.
//!
//! The paper's implementation uses gRPC for the directory service and raw TCP pushes
//! for the data plane (§4). This reproduction keeps a single message enum; drivers are
//! free to map it onto any transport (the simulator models its size, the TCP transport
//! frames it).

use crate::buffer::Payload;
use crate::error::HopliteError;
use crate::object::{NodeId, ObjectId, ObjectStatus};
use crate::reduce::ReduceSpec;
use crate::time::Duration;

/// Identifier correlating a client request with its reply on one node.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct OpId(pub u64);

/// Identifier of a timer registered by the node with its driver.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TimerToken(pub u64);

/// Result of a directory location query.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryResult {
    /// Small object served straight from the directory cache (§3.2 fast path).
    Inline {
        /// The object contents.
        payload: Payload,
    },
    /// A location to pull from. The directory has recorded the requester as an
    /// in-flight receiver of `node` (one receiver per sender at a time, §3.4.1).
    Location {
        /// Chosen sender.
        node: NodeId,
        /// Whether the sender currently holds a partial or complete copy.
        status: ObjectStatus,
        /// Total object size.
        size: u64,
    },
    /// The object was deleted while the query was pending.
    Deleted,
}

/// Everything one reduce participant needs to know about its place in the tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReduceInstruction {
    /// The reduce output object id; doubles as the reduce identifier.
    pub target: ObjectId,
    /// Node coordinating the reduce (where the client called `Reduce`).
    pub coordinator: NodeId,
    /// The slot this participant owns (generalized in-order rank).
    pub slot: usize,
    /// The participant's own input object.
    pub own_object: ObjectId,
    /// Operator and element type.
    pub spec: ReduceSpec,
    /// Size in bytes of every input object (and of the output).
    pub object_size: u64,
    /// Pipelining block size to use for streaming partial results.
    pub block_size: u64,
    /// Number of inputs this slot combines: its own object plus one stream per child
    /// slot (children counted even if not yet assigned).
    pub num_inputs: usize,
    /// Accumulation epoch; a higher epoch than previously seen means "clear partial
    /// results and start over" (§3.5.2).
    pub epoch: u64,
    /// Parent slot (`None` for the root, which materializes the result object).
    pub parent: Option<ReduceParent>,
    /// Currently-assigned children, for diagnostics and eager validation.
    pub children: Vec<(usize, NodeId, ObjectId)>,
    /// Whether this slot is the root.
    pub is_root: bool,
    /// Total number of slots in the tree.
    pub total_slots: usize,
}

/// Identity of a reduce participant's parent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReduceParent {
    /// Parent slot index.
    pub slot: usize,
    /// Node that owns the parent slot.
    pub node: NodeId,
    /// Parent's accumulation epoch; streamed blocks are tagged with it so stale blocks
    /// can be discarded after a repair.
    pub epoch: u64,
}

/// One mutating directory operation, in the form the replication layer ships between
/// replicas of a shard (§3.5: the paper replicates the object directory). Every
/// client-facing `Dir*` message maps onto one `DirOp`; the primary applies the op and
/// log-ships it to its backups inside [`Message::DirReplicate`], and a backup replays
/// the identical op against its mirror shard with outbound replies suppressed.
#[derive(Clone, Debug, PartialEq)]
pub enum DirOp {
    /// See [`Message::DirRegister`].
    Register {
        /// The object.
        object: ObjectId,
        /// The node holding the copy.
        holder: NodeId,
        /// Partial or complete.
        status: ObjectStatus,
        /// Total object size.
        size: u64,
    },
    /// See [`Message::DirPutInline`].
    PutInline {
        /// The object.
        object: ObjectId,
        /// The node that created it.
        holder: NodeId,
        /// Full contents.
        payload: Payload,
    },
    /// See [`Message::DirUnregister`].
    Unregister {
        /// The object.
        object: ObjectId,
        /// The holder to remove.
        holder: NodeId,
    },
    /// See [`Message::DirQuery`]. Queries mutate shard state (leases, pull edges,
    /// parked entries), so they are part of the replicated log like every other op.
    Query {
        /// The object.
        object: ObjectId,
        /// Node asking.
        requester: NodeId,
        /// Correlation id, unique per requester.
        query_id: u64,
        /// Nodes the requester knows to be unusable.
        exclude: Vec<NodeId>,
    },
    /// See [`Message::DirSubscribe`].
    Subscribe {
        /// The object.
        object: ObjectId,
        /// Subscriber node.
        subscriber: NodeId,
    },
    /// See [`Message::DirUnsubscribe`].
    Unsubscribe {
        /// The object.
        object: ObjectId,
        /// Subscriber node.
        subscriber: NodeId,
    },
    /// See [`Message::DirTransferDone`].
    TransferDone {
        /// The object.
        object: ObjectId,
        /// The receiver that completed its copy.
        receiver: NodeId,
        /// The sender it copied from.
        sender: NodeId,
    },
    /// See [`Message::DirDelete`].
    Delete {
        /// The object.
        object: ObjectId,
    },
}

impl DirOp {
    /// The node that originated this op (and therefore journals it for failover
    /// re-drive), for the op kinds the primary acknowledges back to their origin once
    /// the op is replication-durable. Ops that remove journal state (unregister,
    /// unsubscribe, delete) and queries (re-driven through their own path) have no
    /// durability acknowledgement.
    pub fn confirm_target(&self) -> Option<(NodeId, ConfirmKind)> {
        match self {
            DirOp::Register { holder, status, .. } => {
                Some((*holder, ConfirmKind::Location { status: *status }))
            }
            DirOp::PutInline { holder, .. } => Some((*holder, ConfirmKind::Inline)),
            DirOp::Subscribe { subscriber, .. } => Some((*subscriber, ConfirmKind::Subscription)),
            _ => None,
        }
    }

    /// The object this op concerns (every directory op targets exactly one object,
    /// which is what the placement layer routes on).
    pub fn object(&self) -> ObjectId {
        match self {
            DirOp::Register { object, .. }
            | DirOp::PutInline { object, .. }
            | DirOp::Unregister { object, .. }
            | DirOp::Query { object, .. }
            | DirOp::Subscribe { object, .. }
            | DirOp::Unsubscribe { object, .. }
            | DirOp::TransferDone { object, .. }
            | DirOp::Delete { object } => *object,
        }
    }

    /// Reconstruct the client-facing message form (used when a backup forwards an op
    /// it received by mistake to the shard's current primary).
    pub fn into_message(self) -> Message {
        match self {
            DirOp::Register { object, holder, status, size } => {
                Message::DirRegister { object, holder, status, size }
            }
            DirOp::PutInline { object, holder, payload } => {
                Message::DirPutInline { object, holder, payload }
            }
            DirOp::Unregister { object, holder } => Message::DirUnregister { object, holder },
            DirOp::Query { object, requester, query_id, exclude } => {
                Message::DirQuery { object, requester, query_id, exclude }
            }
            DirOp::Subscribe { object, subscriber } => Message::DirSubscribe { object, subscriber },
            DirOp::Unsubscribe { object, subscriber } => {
                Message::DirUnsubscribe { object, subscriber }
            }
            DirOp::TransferDone { object, receiver, sender } => {
                Message::DirTransferDone { object, receiver, sender }
            }
            DirOp::Delete { object } => Message::DirDelete { object },
        }
    }
}

/// What a [`Message::DirConfirm`] acknowledges as replication-durable: the primary
/// sends one to an op's origin once every tracked backup has acked the op's log
/// sequence number, which lets the origin's [`crate::directory::DirectoryClient`]
/// shrink its failover re-drive set to the genuinely-unacked window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConfirmKind {
    /// A `Register` with this status reached the acked prefix.
    Location {
        /// The status that was registered.
        status: ObjectStatus,
    },
    /// An inline `PutInline` reached the acked prefix.
    Inline,
    /// A `Subscribe` reached the acked prefix.
    Subscription,
}

/// Serialized state of one object entry inside a [`ShardSnapshot`]. Field order and
/// the sortedness of the inner vectors are part of the format: snapshots of identical
/// shards compare equal, which the resync tests rely on.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SnapshotEntry {
    /// The object this entry describes.
    pub object: ObjectId,
    /// Total object size, if known.
    pub size: Option<u64>,
    /// `(holder, status, leased_to)` triples, sorted by holder.
    pub locations: Vec<(NodeId, ObjectStatus, Option<NodeId>)>,
    /// Inline-cached payload for small objects.
    pub inline: Option<Payload>,
    /// Parked queries in arrival order: `(requester, query_id, exclude)`.
    pub pending: Vec<(NodeId, u64, Vec<NodeId>)>,
    /// Subscribers, sorted.
    pub subscribers: Vec<NodeId>,
    /// In-flight pull edges `(receiver, sender)`, sorted by receiver.
    pub pulls: Vec<(NodeId, NodeId)>,
    /// Whether the object is tombstoned.
    pub deleted: bool,
    /// Inline-cache LRU stamp (0 when no inline payload is cached). Shipped so a
    /// resynced replica inherits the source's recency order and future replicated
    /// evictions pick the same victims on every replica.
    pub inline_stamp: u64,
}

impl SnapshotEntry {
    /// Approximate wire size in bytes of this entry inside a snapshot or chunk
    /// (mirrors the framing layout closely enough for the simulator's bandwidth
    /// model and for the chunk-bound budgeting in the resync source).
    pub fn wire_size(&self) -> u64 {
        56 + 13 * self.locations.len() as u64
            + self.inline.as_ref().map(|p| p.len()).unwrap_or(0)
            + self.pending.iter().map(|(_, _, ex)| 20 + 4 * ex.len() as u64).sum::<u64>()
            + 4 * self.subscribers.len() as u64
            + 8 * self.pulls.len() as u64
    }
}

/// Full state of one directory shard, shipped to a recovering or newly-placed backup
/// inside [`Message::DirSnapshot`] so it can be re-admitted to the replica set
/// (§3.5: state transfer + log catch-up instead of failure-monotonic placement).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ShardSnapshot {
    /// One entry per tracked object, sorted by object id.
    pub entries: Vec<SnapshotEntry>,
}

impl ShardSnapshot {
    /// Approximate wire size in bytes (mirrors the framing layout closely enough for
    /// the simulator's bandwidth model — snapshots of busy shards are bulk traffic).
    pub fn wire_size(&self) -> u64 {
        self.entries.iter().map(SnapshotEntry::wire_size).sum()
    }
}

/// Node-to-node protocol messages.
#[derive(Clone, Debug, PartialEq)]
pub enum Message {
    // ---------------------------------------------------------------- directory ----
    /// Register (or refresh) a location for an object. Sent both when a local client
    /// creates the object via `Put` (immediately, with `Partial` status, to enable
    /// pipelining) and when a copy finishes arriving from a remote node (§3.2).
    DirRegister {
        /// The object.
        object: ObjectId,
        /// The node holding the copy.
        holder: NodeId,
        /// Partial or complete.
        status: ObjectStatus,
        /// Total object size.
        size: u64,
    },
    /// Small-object fast path: ship the whole object to the directory shard, which
    /// caches it and serves it inline from query replies (§3.2).
    DirPutInline {
        /// The object.
        object: ObjectId,
        /// The node that created it.
        holder: NodeId,
        /// Full contents.
        payload: Payload,
    },
    /// Remove one holder's location (e.g. after local eviction).
    DirUnregister {
        /// The object.
        object: ObjectId,
        /// The holder to remove.
        holder: NodeId,
    },
    /// Synchronous location query: answered as soon as a usable location exists (which
    /// may be immediately, or later when one is registered).
    DirQuery {
        /// The object.
        object: ObjectId,
        /// Node asking (and future receiver).
        requester: NodeId,
        /// Correlation id, unique per requester.
        query_id: u64,
        /// Nodes the requester knows to be unusable (e.g. a failed previous sender).
        exclude: Vec<NodeId>,
    },
    /// Reply to [`Message::DirQuery`].
    DirQueryReply {
        /// The object.
        object: ObjectId,
        /// Correlation id from the query.
        query_id: u64,
        /// Chosen location / inline payload.
        result: QueryResult,
    },
    /// Subscribe to location publications for an object (asynchronous query, §3.2).
    DirSubscribe {
        /// The object.
        object: ObjectId,
        /// Subscriber node.
        subscriber: NodeId,
    },
    /// Drop a subscription (reduce coordinators unsubscribe once their reduce
    /// completes, so long-lived clusters do not accumulate dead subscribers).
    DirUnsubscribe {
        /// The object.
        object: ObjectId,
        /// Subscriber node.
        subscriber: NodeId,
    },
    /// Location publication pushed to subscribers.
    DirPublish {
        /// The object.
        object: ObjectId,
        /// Holder being published.
        holder: NodeId,
        /// Partial or complete.
        status: ObjectStatus,
        /// Total object size.
        size: u64,
    },
    /// Release the in-flight edge `receiver -> sender` once a transfer completes, so
    /// the sender becomes eligible for other receivers again (§3.4.1).
    DirTransferDone {
        /// The object.
        object: ObjectId,
        /// The receiver that completed its copy.
        receiver: NodeId,
        /// The sender it copied from.
        sender: NodeId,
    },
    /// Delete every copy of the object (Table 1 `Delete`).
    DirDelete {
        /// The object.
        object: ObjectId,
    },
    /// Directory shard → holder: drop your local copy (delete fan-out).
    StoreRelease {
        /// The object.
        object: ObjectId,
    },
    /// Primary replica → backup replica: apply one directory op to your mirror of
    /// `shard`. Stamped with the primary's promotion epoch and a per-shard log
    /// sequence number; backups reject ops from a lower epoch than they have seen
    /// (a deposed primary's stragglers), apply in sequence order, and acknowledge the
    /// applied prefix with [`Message::DirAck`].
    DirReplicate {
        /// Shard index the op belongs to.
        shard: u64,
        /// The shipping primary's promotion epoch.
        epoch: u64,
        /// Log sequence number of the op (contiguous, starting at 1).
        seq: u64,
        /// The op to replay.
        op: DirOp,
    },
    /// Backup replica → primary: cumulative acknowledgement that this replica has
    /// applied the primary's log through `seq`. The primary trims its retained log
    /// prefix once every tracked backup has acked it and then confirms the contained
    /// ops to their origins ([`Message::DirConfirm`]).
    DirAck {
        /// Shard index.
        shard: u64,
        /// The acker's current epoch. Informational: receivers fold it into their
        /// failover-epoch counter. Acks themselves stay valid across promotions —
        /// sequence numbers only re-baseline through a snapshot, which also resets
        /// the acker's cumulative position.
        epoch: u64,
        /// Highest contiguously-applied sequence number.
        seq: u64,
    },
    /// Recovering (or gap-detecting) replica → believed primary: please send me a full
    /// state snapshot of `shard` so I can be re-admitted as a backup. Forwarded to the
    /// current primary when it lands elsewhere.
    DirSnapshotRequest {
        /// Shard index.
        shard: u64,
        /// The replica asking to be re-admitted.
        requester: NodeId,
        /// `true` when the requester *restarted* and is resyncing every hosted shard
        /// (it will broadcast [`Message::DirResynced`] when done). Receivers that
        /// still believed the requester was a healthy primary treat a restart
        /// request as the failure notice the detector has not delivered yet — a node
        /// asking for its shard's state back cannot be that shard's leader. `false`
        /// for a gap-detected catch-up from a live backup, which must not disturb
        /// anyone's liveness view.
        restart: bool,
        /// Chunk-stream cursor: `None` opens a new stream from the start of the
        /// shard; `Some(o)` resumes after object `o` (every entry up to and
        /// including `o` has been installed). A resumed stream survives source
        /// death: the re-targeted request carries the cursor to the new source.
        after: Option<ObjectId>,
        /// The requester's current replica epoch, for delta eligibility.
        have_epoch: u64,
        /// The requester's contiguously-applied log position. When the source's
        /// retained log suffix covers `(have_seq, applied_seq]` (and the request is
        /// not a restart), it replays ops as [`Message::DirResyncDelta`] instead of
        /// shipping state at all.
        have_seq: u64,
        /// The requester's membership digest (`(node, incarnation, alive)` per
        /// cluster node), carried on restart requests so the resync source can
        /// teach the requester deaths it slept through: the source merges the
        /// digest and answers every strictly-newer entry with a
        /// [`Message::MembershipDigest`]. Empty on gap-detected catch-ups.
        digest: Vec<crate::membership::MemberDigestEntry>,
    },
    /// Primary → recovering replica: full shard state at log position `seq`, epoch
    /// `epoch`. `rank` is the primary's current placement cursor for the shard, which
    /// the recovering node adopts so its own view does not fail back to itself.
    DirSnapshot {
        /// Shard index.
        shard: u64,
        /// The primary's promotion epoch at capture time.
        epoch: u64,
        /// Log sequence number the snapshot includes (catch-up replays from here).
        seq: u64,
        /// The shard's current primary rank in the replica set.
        rank: u64,
        /// The shard state itself.
        state: ShardSnapshot,
    },
    /// Primary → recovering replica: one bounded slice of shard state in a
    /// cursor-driven resync stream. The receiver installs the carried entries,
    /// advances its cursor past the last one, and requests the next chunk with
    /// [`Message::DirSnapshotRequest`]; the source interleaves live op shipments
    /// between chunks, re-sending entries mutated behind the cursor, so it is never
    /// paused for O(objects) time. The final chunk (`done`) carries the log
    /// position the assembled state is consistent at.
    DirSnapshotChunk {
        /// Shard index.
        shard: u64,
        /// The source's promotion epoch at capture time.
        epoch: u64,
        /// Log sequence number this chunk's entries are consistent at. Only
        /// meaningful for installation on the final (`done`) chunk.
        seq: u64,
        /// The source's current placement cursor for the shard (adopted at `done`).
        rank: u64,
        /// `true` on the final chunk of the stream.
        done: bool,
        /// The slice of entries, sorted by object id, `wire_size() <=`
        /// `snapshot_chunk_bytes` unless a single entry alone exceeds the bound.
        state: ShardSnapshot,
    },
    /// Primary → gap-detected replica: a replay of the retained op-log suffix
    /// `(have_seq, applied_seq]` instead of a state transfer — the cheap resync
    /// path when the gap is bridgeable. Split across multiple frames when larger
    /// than the chunk bound; the last one is flagged `done`.
    DirResyncDelta {
        /// Shard index.
        shard: u64,
        /// The source's promotion epoch.
        epoch: u64,
        /// `(seq, op)` pairs in contiguous sequence order.
        ops: Vec<(u64, DirOp)>,
        /// `true` on the final frame: the receiver is caught up through the last
        /// carried seq and leaves resync.
        done: bool,
    },
    /// Broadcast by a recovered node once every shard it hosts has installed its
    /// snapshot and caught up: the node is re-admitted as a primary candidate (the
    /// epoch-versioned placement bumps the affected shards' failover epochs).
    DirResynced {
        /// The node that finished resyncing.
        node: NodeId,
        /// The announcing node's current incarnation. Receivers drop announcements
        /// about an incarnation they have already seen die — a late `DirResynced`
        /// must not re-admit a node that crashed again after sending it.
        incarnation: u64,
    },
    /// Primary → op origin: the op identified by `(object, kind)` has been replicated
    /// to every tracked backup and is durable without any client re-drive.
    DirConfirm {
        /// The object the confirmed op concerned.
        object: ObjectId,
        /// Which journaled intent is confirmed.
        kind: ConfirmKind,
    },

    // --------------------------------------------------------------- data plane ----
    /// Ask `holder` to stream an object starting at `offset` (the receiver-driven pull
    /// of §3.4.1; `offset > 0` happens when resuming after a sender failure, §3.5.1).
    PullRequest {
        /// The object.
        object: ObjectId,
        /// The receiver.
        requester: NodeId,
        /// Byte offset to start from.
        offset: u64,
    },
    /// Cancel an in-flight pull (receiver found a better source or is shutting down).
    PullCancel {
        /// The object.
        object: ObjectId,
        /// The receiver that is cancelling.
        requester: NodeId,
    },
    /// One pipelining block of object data pushed from sender to receiver.
    PushBlock {
        /// The object.
        object: ObjectId,
        /// Byte offset of this block.
        offset: u64,
        /// Total object size (repeated so receivers can allocate on first block).
        total_size: u64,
        /// Block contents.
        payload: Payload,
        /// `true` on the final block.
        complete: bool,
    },
    /// The sender cannot serve the pull (object evicted or deleted).
    PullError {
        /// The object.
        object: ObjectId,
        /// Human-readable reason.
        reason: String,
    },

    // ------------------------------------------------------------------- reduce ----
    /// Coordinator → participant: your place in the reduce tree (sent initially and
    /// re-sent whenever the dynamic tree changes, §3.4.2 / §3.5.2).
    ReduceInstruction(ReduceInstruction),
    /// Participant → parent: one block of (partially) reduced data.
    ReduceBlock {
        /// Reduce identifier (the target object id).
        target: ObjectId,
        /// Parent slot this block is destined for.
        to_slot: usize,
        /// Sender's slot.
        from_slot: usize,
        /// The parent epoch this block belongs to.
        parent_epoch: u64,
        /// Block index.
        block_index: u64,
        /// Total object size.
        object_size: u64,
        /// Block contents (already reduced over the sender's subtree).
        payload: Payload,
    },
    /// Participant → coordinator: the root finished materializing the target object.
    ReduceDone {
        /// Reduce identifier.
        target: ObjectId,
        /// Node holding the result.
        root: NodeId,
    },
    /// Coordinator → participants: the reduce completed; release every participant
    /// slot, parked early block, and routing entry for `target` (reduce-state GC).
    ReduceRelease {
        /// Reduce identifier.
        target: ObjectId,
    },

    // ------------------------------------------------------------- membership ----
    /// A failure notice with an incarnation number, as injected by an external
    /// failure detector (`hoplitectl`, a driver, or a gossiping peer). The receiver
    /// applies the §3.5 failure rules only if its [`crate::membership`] view judges
    /// the notice fresh: notices about an incarnation older than the highest known
    /// are dropped, so a late notice cannot re-kill a node that already restarted.
    PeerFailureNotice {
        /// The node reported dead.
        node: NodeId,
        /// The incarnation that died.
        incarnation: u64,
    },
    /// A batch of membership knowledge: the sender's strictly-newer entries,
    /// answered to a restarted node's digest-carrying
    /// [`Message::DirSnapshotRequest`] so its first gossip round learns of deaths
    /// it slept through.
    MembershipDigest {
        /// `(node, incarnation, alive)` triples, each strictly newer than what the
        /// receiver advertised.
        entries: Vec<crate::membership::MemberDigestEntry>,
    },
    /// SWIM direct probe ([`crate::detector`]). `origin` is the prober — which is
    /// the message's sender for a direct probe but the *original* prober when a
    /// relay forwards a [`Message::PingReq`]; the target acks `origin` directly
    /// either way, so relays stay stateless.
    Ping {
        /// The node whose probe round this is (acks go here).
        origin: NodeId,
        /// Correlates the ack with the prober's outstanding round.
        probe_id: u64,
        /// Piggybacked membership claims (bounded by the gossip budget).
        gossip: Vec<crate::detector::GossipEntry>,
    },
    /// SWIM probe acknowledgement, sent to the probe's `origin`.
    Ack {
        /// `probe_id` of the [`Message::Ping`] being answered.
        probe_id: u64,
        /// Piggybacked membership claims.
        gossip: Vec<crate::detector::GossipEntry>,
    },
    /// SWIM indirect probe request: "please ping `target` for me". Sent to `k`
    /// random relays after a direct probe misses its ack; each relay forwards a
    /// [`Message::Ping`] carrying the requester as `origin`.
    PingReq {
        /// The unresponsive peer the relay should probe.
        target: NodeId,
        /// The requester's probe round id, passed through unchanged.
        probe_id: u64,
        /// Piggybacked membership claims.
        gossip: Vec<crate::detector::GossipEntry>,
    },

    // ---------------------------------------------------------------- transport ----
    /// Transport-level peer identification: the first frame on a freshly opened
    /// connection announces the sender's node id, so the accept side can tag every
    /// subsequent frame with its origin. The framed fabrics additionally forward it
    /// to the node's protocol handlers as liveness evidence: a reconnecting peer's
    /// `Hello` carries its current incarnation.
    Hello {
        /// The connecting node.
        node: NodeId,
        /// The connecting process's incarnation (0 on cold boot, bumped by every
        /// restart).
        incarnation: u64,
    },
}

impl Message {
    /// Approximate wire size in bytes, used by the simulator's bandwidth model. Control
    /// messages are small and fixed-size; data-plane messages are dominated by their
    /// payload.
    pub fn wire_size(&self) -> u64 {
        const CONTROL: u64 = 96;
        match self {
            Message::PushBlock { payload, .. } => CONTROL + payload.len(),
            Message::ReduceBlock { payload, .. } => CONTROL + payload.len(),
            Message::DirPutInline { payload, .. } => CONTROL + payload.len(),
            Message::DirQueryReply { result: QueryResult::Inline { payload }, .. } => {
                CONTROL + payload.len()
            }
            Message::ReduceInstruction(instr) => CONTROL + 24 * instr.children.len() as u64,
            Message::DirQuery { exclude, .. } => CONTROL + 4 * exclude.len() as u64,
            Message::DirReplicate { op, .. } => match op {
                DirOp::PutInline { payload, .. } => 2 * CONTROL + payload.len(),
                DirOp::Query { exclude, .. } => 2 * CONTROL + 4 * exclude.len() as u64,
                _ => 2 * CONTROL,
            },
            Message::DirSnapshotRequest { digest, .. } => CONTROL + 13 * digest.len() as u64,
            Message::MembershipDigest { entries } => CONTROL + 13 * entries.len() as u64,
            Message::Ping { gossip, .. } => CONTROL + 13 * gossip.len() as u64,
            Message::Ack { gossip, .. } => CONTROL + 13 * gossip.len() as u64,
            Message::PingReq { gossip, .. } => CONTROL + 13 * gossip.len() as u64,
            Message::DirSnapshot { state, .. } => CONTROL + state.wire_size(),
            Message::DirSnapshotChunk { state, .. } => CONTROL + state.wire_size(),
            Message::DirResyncDelta { ops, .. } => {
                CONTROL
                    + ops
                        .iter()
                        .map(|(_, op)| match op {
                            DirOp::PutInline { payload, .. } => CONTROL + payload.len(),
                            DirOp::Query { exclude, .. } => CONTROL + 4 * exclude.len() as u64,
                            _ => CONTROL,
                        })
                        .sum::<u64>()
            }
            _ => CONTROL,
        }
    }

    /// `true` for messages that belong to the bulk data plane (used by the simulator to
    /// prioritize control traffic the way small RPCs win on a real network).
    pub fn is_bulk(&self) -> bool {
        matches!(self, Message::PushBlock { .. } | Message::ReduceBlock { .. })
    }
}

/// A client-facing operation submitted to the local Hoplite node (Table 1).
#[derive(Clone, Debug, PartialEq)]
pub enum ClientOp {
    /// Store an object in the local store and publish its location.
    Put {
        /// The new object's id.
        object: ObjectId,
        /// Object contents (real or synthetic).
        payload: Payload,
    },
    /// Fetch an object into the local store (and hand it to the caller).
    Get {
        /// The object to fetch.
        object: ObjectId,
    },
    /// Create `target` by reducing `num_objects` of the given source objects.
    Reduce {
        /// Output object id.
        target: ObjectId,
        /// Candidate source objects (futures; they may not exist yet).
        sources: Vec<ObjectId>,
        /// How many of the sources to fold in (`None` = all of them).
        num_objects: Option<usize>,
        /// Operator and element type.
        spec: ReduceSpec,
        /// Force a specific tree degree instead of the runtime model's choice
        /// (`None` = pick from [`crate::config::HopliteConfig::reduce_degrees`]; used by
        /// the Appendix-B ablation).
        degree: Option<usize>,
    },
    /// Delete every copy of an object cluster-wide.
    Delete {
        /// The object to delete.
        object: ObjectId,
    },
}

/// Reply to a [`ClientOp`].
#[derive(Clone, Debug, PartialEq)]
pub enum ClientReply {
    /// `Put` finished copying into the local store.
    PutDone {
        /// The stored object.
        object: ObjectId,
    },
    /// `Get` completed; the payload is a complete copy of the object.
    GetDone {
        /// The fetched object.
        object: ObjectId,
        /// The object contents.
        payload: Payload,
    },
    /// `Reduce` was accepted and the coordinator is building the tree; fetch the target
    /// object with `Get` to obtain the result.
    ReduceAccepted {
        /// The reduce output object.
        target: ObjectId,
    },
    /// The target object of a `Reduce` issued on this node is now fully materialized at
    /// the tree root.
    ReduceComplete {
        /// The reduce output object.
        target: ObjectId,
    },
    /// `Delete` was dispatched.
    DeleteDone {
        /// The deleted object.
        object: ObjectId,
    },
    /// The operation failed.
    Error {
        /// What failed.
        error: HopliteError,
    },
}

/// Side effects requested by the node state machine; the driver executes them.
#[derive(Clone, Debug, PartialEq)]
pub enum Effect {
    /// Send a protocol message to a peer node.
    Send {
        /// Destination node.
        to: NodeId,
        /// The message.
        msg: Message,
    },
    /// Complete a client operation.
    Reply {
        /// The operation being answered.
        op: OpId,
        /// Its result.
        reply: ClientReply,
    },
    /// Ask the driver to call `handle_timer` with this token after `delay`.
    SetTimer {
        /// Token to hand back.
        token: TimerToken,
        /// Delay from now.
        delay: Duration,
    },
    /// The node's own failure machinery (a detector death verdict, a gossiped or
    /// digest-learned death) has declared `node` dead: drivers that own real
    /// connections should tear down transport state to it (close sockets, drop
    /// send queues) exactly as they would on a supervisor verdict. Drivers
    /// without per-peer transport state (the simulator) may ignore it.
    PeerDown {
        /// The peer declared dead.
        node: NodeId,
    },
    /// Advisory: a local block of `object` became readable at the store (watermark
    /// advanced). Drivers that model worker-side pipelined `Get`s use this to stream
    /// data to workers before the object is complete; other drivers may ignore it.
    LocalProgress {
        /// The object making progress.
        object: ObjectId,
        /// New watermark in bytes.
        watermark: u64,
        /// Total size in bytes.
        total_size: u64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_size_tracks_payload() {
        let small = Message::DirQuery {
            object: ObjectId::from_name("x"),
            requester: NodeId(0),
            query_id: 1,
            exclude: vec![],
        };
        let big = Message::PushBlock {
            object: ObjectId::from_name("x"),
            offset: 0,
            total_size: 4096,
            payload: Payload::synthetic(4096),
            complete: true,
        };
        assert!(small.wire_size() < 200);
        assert!(big.wire_size() > 4096);
        assert!(big.is_bulk());
        assert!(!small.is_bulk());
    }

    #[test]
    fn messages_clone_and_compare() {
        let msg = Message::PushBlock {
            object: ObjectId::from_name("y"),
            offset: 128,
            total_size: 256,
            payload: Payload::from_vec(vec![1, 2, 3]),
            complete: false,
        };
        // Wire encoding itself is exercised by the transport crate's framing tests;
        // here we make sure the message is cloneable/comparable.
        let copy = msg.clone();
        assert_eq!(copy, msg);
    }

    #[test]
    fn reduce_instruction_equality() {
        let instr = ReduceInstruction {
            target: ObjectId::from_name("t"),
            coordinator: NodeId(0),
            slot: 3,
            own_object: ObjectId::from_name("s"),
            spec: ReduceSpec::sum_f32(),
            object_size: 1024,
            block_size: 256,
            num_inputs: 3,
            epoch: 0,
            parent: Some(ReduceParent { slot: 5, node: NodeId(2), epoch: 1 }),
            children: vec![(1, NodeId(4), ObjectId::from_name("c"))],
            is_root: false,
            total_slots: 6,
        };
        assert_eq!(instr.clone(), instr);
        let m = Message::ReduceInstruction(instr);
        assert!(m.wire_size() >= 96);
    }
}
