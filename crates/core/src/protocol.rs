//! Wire protocol of the Hoplite control and data planes, and the effect type through
//! which the sans-IO node state machine talks to its driver.
//!
//! The paper's implementation uses gRPC for the directory service and raw TCP pushes
//! for the data plane (§4). This reproduction keeps a single message enum; drivers are
//! free to map it onto any transport (the simulator models its size, the TCP transport
//! frames it).

use crate::buffer::Payload;
use crate::error::HopliteError;
use crate::object::{NodeId, ObjectId, ObjectStatus};
use crate::reduce::ReduceSpec;
use crate::time::Duration;

/// Identifier correlating a client request with its reply on one node.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct OpId(pub u64);

/// Identifier of a timer registered by the node with its driver.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TimerToken(pub u64);

/// Result of a directory location query.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryResult {
    /// Small object served straight from the directory cache (§3.2 fast path).
    Inline {
        /// The object contents.
        payload: Payload,
    },
    /// A location to pull from. The directory has recorded the requester as an
    /// in-flight receiver of `node` (one receiver per sender at a time, §3.4.1).
    Location {
        /// Chosen sender.
        node: NodeId,
        /// Whether the sender currently holds a partial or complete copy.
        status: ObjectStatus,
        /// Total object size.
        size: u64,
    },
    /// The object was deleted while the query was pending.
    Deleted,
}

/// Everything one reduce participant needs to know about its place in the tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReduceInstruction {
    /// The reduce output object id; doubles as the reduce identifier.
    pub target: ObjectId,
    /// Node coordinating the reduce (where the client called `Reduce`).
    pub coordinator: NodeId,
    /// The slot this participant owns (generalized in-order rank).
    pub slot: usize,
    /// The participant's own input object.
    pub own_object: ObjectId,
    /// Operator and element type.
    pub spec: ReduceSpec,
    /// Size in bytes of every input object (and of the output).
    pub object_size: u64,
    /// Pipelining block size to use for streaming partial results.
    pub block_size: u64,
    /// Number of inputs this slot combines: its own object plus one stream per child
    /// slot (children counted even if not yet assigned).
    pub num_inputs: usize,
    /// Accumulation epoch; a higher epoch than previously seen means "clear partial
    /// results and start over" (§3.5.2).
    pub epoch: u64,
    /// Parent slot (`None` for the root, which materializes the result object).
    pub parent: Option<ReduceParent>,
    /// Currently-assigned children, for diagnostics and eager validation.
    pub children: Vec<(usize, NodeId, ObjectId)>,
    /// Whether this slot is the root.
    pub is_root: bool,
    /// Total number of slots in the tree.
    pub total_slots: usize,
}

/// Identity of a reduce participant's parent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReduceParent {
    /// Parent slot index.
    pub slot: usize,
    /// Node that owns the parent slot.
    pub node: NodeId,
    /// Parent's accumulation epoch; streamed blocks are tagged with it so stale blocks
    /// can be discarded after a repair.
    pub epoch: u64,
}

/// One mutating directory operation, in the form the replication layer ships between
/// replicas of a shard (§3.5: the paper replicates the object directory). Every
/// client-facing `Dir*` message maps onto one `DirOp`; the primary applies the op and
/// log-ships it to its backups inside [`Message::DirReplicate`], and a backup replays
/// the identical op against its mirror shard with outbound replies suppressed.
#[derive(Clone, Debug, PartialEq)]
pub enum DirOp {
    /// See [`Message::DirRegister`].
    Register {
        /// The object.
        object: ObjectId,
        /// The node holding the copy.
        holder: NodeId,
        /// Partial or complete.
        status: ObjectStatus,
        /// Total object size.
        size: u64,
    },
    /// See [`Message::DirPutInline`].
    PutInline {
        /// The object.
        object: ObjectId,
        /// The node that created it.
        holder: NodeId,
        /// Full contents.
        payload: Payload,
    },
    /// See [`Message::DirUnregister`].
    Unregister {
        /// The object.
        object: ObjectId,
        /// The holder to remove.
        holder: NodeId,
    },
    /// See [`Message::DirQuery`]. Queries mutate shard state (leases, pull edges,
    /// parked entries), so they are part of the replicated log like every other op.
    Query {
        /// The object.
        object: ObjectId,
        /// Node asking.
        requester: NodeId,
        /// Correlation id, unique per requester.
        query_id: u64,
        /// Nodes the requester knows to be unusable.
        exclude: Vec<NodeId>,
    },
    /// See [`Message::DirSubscribe`].
    Subscribe {
        /// The object.
        object: ObjectId,
        /// Subscriber node.
        subscriber: NodeId,
    },
    /// See [`Message::DirUnsubscribe`].
    Unsubscribe {
        /// The object.
        object: ObjectId,
        /// Subscriber node.
        subscriber: NodeId,
    },
    /// See [`Message::DirTransferDone`].
    TransferDone {
        /// The object.
        object: ObjectId,
        /// The receiver that completed its copy.
        receiver: NodeId,
        /// The sender it copied from.
        sender: NodeId,
    },
    /// See [`Message::DirDelete`].
    Delete {
        /// The object.
        object: ObjectId,
    },
}

impl DirOp {
    /// The object this op concerns (every directory op targets exactly one object,
    /// which is what the placement layer routes on).
    pub fn object(&self) -> ObjectId {
        match self {
            DirOp::Register { object, .. }
            | DirOp::PutInline { object, .. }
            | DirOp::Unregister { object, .. }
            | DirOp::Query { object, .. }
            | DirOp::Subscribe { object, .. }
            | DirOp::Unsubscribe { object, .. }
            | DirOp::TransferDone { object, .. }
            | DirOp::Delete { object } => *object,
        }
    }

    /// Reconstruct the client-facing message form (used when a backup forwards an op
    /// it received by mistake to the shard's current primary).
    pub fn into_message(self) -> Message {
        match self {
            DirOp::Register { object, holder, status, size } => {
                Message::DirRegister { object, holder, status, size }
            }
            DirOp::PutInline { object, holder, payload } => {
                Message::DirPutInline { object, holder, payload }
            }
            DirOp::Unregister { object, holder } => Message::DirUnregister { object, holder },
            DirOp::Query { object, requester, query_id, exclude } => {
                Message::DirQuery { object, requester, query_id, exclude }
            }
            DirOp::Subscribe { object, subscriber } => Message::DirSubscribe { object, subscriber },
            DirOp::Unsubscribe { object, subscriber } => {
                Message::DirUnsubscribe { object, subscriber }
            }
            DirOp::TransferDone { object, receiver, sender } => {
                Message::DirTransferDone { object, receiver, sender }
            }
            DirOp::Delete { object } => Message::DirDelete { object },
        }
    }
}

/// Node-to-node protocol messages.
#[derive(Clone, Debug, PartialEq)]
pub enum Message {
    // ---------------------------------------------------------------- directory ----
    /// Register (or refresh) a location for an object. Sent both when a local client
    /// creates the object via `Put` (immediately, with `Partial` status, to enable
    /// pipelining) and when a copy finishes arriving from a remote node (§3.2).
    DirRegister {
        /// The object.
        object: ObjectId,
        /// The node holding the copy.
        holder: NodeId,
        /// Partial or complete.
        status: ObjectStatus,
        /// Total object size.
        size: u64,
    },
    /// Small-object fast path: ship the whole object to the directory shard, which
    /// caches it and serves it inline from query replies (§3.2).
    DirPutInline {
        /// The object.
        object: ObjectId,
        /// The node that created it.
        holder: NodeId,
        /// Full contents.
        payload: Payload,
    },
    /// Remove one holder's location (e.g. after local eviction).
    DirUnregister {
        /// The object.
        object: ObjectId,
        /// The holder to remove.
        holder: NodeId,
    },
    /// Synchronous location query: answered as soon as a usable location exists (which
    /// may be immediately, or later when one is registered).
    DirQuery {
        /// The object.
        object: ObjectId,
        /// Node asking (and future receiver).
        requester: NodeId,
        /// Correlation id, unique per requester.
        query_id: u64,
        /// Nodes the requester knows to be unusable (e.g. a failed previous sender).
        exclude: Vec<NodeId>,
    },
    /// Reply to [`Message::DirQuery`].
    DirQueryReply {
        /// The object.
        object: ObjectId,
        /// Correlation id from the query.
        query_id: u64,
        /// Chosen location / inline payload.
        result: QueryResult,
    },
    /// Subscribe to location publications for an object (asynchronous query, §3.2).
    DirSubscribe {
        /// The object.
        object: ObjectId,
        /// Subscriber node.
        subscriber: NodeId,
    },
    /// Drop a subscription (reduce coordinators unsubscribe once their reduce
    /// completes, so long-lived clusters do not accumulate dead subscribers).
    DirUnsubscribe {
        /// The object.
        object: ObjectId,
        /// Subscriber node.
        subscriber: NodeId,
    },
    /// Location publication pushed to subscribers.
    DirPublish {
        /// The object.
        object: ObjectId,
        /// Holder being published.
        holder: NodeId,
        /// Partial or complete.
        status: ObjectStatus,
        /// Total object size.
        size: u64,
    },
    /// Release the in-flight edge `receiver -> sender` once a transfer completes, so
    /// the sender becomes eligible for other receivers again (§3.4.1).
    DirTransferDone {
        /// The object.
        object: ObjectId,
        /// The receiver that completed its copy.
        receiver: NodeId,
        /// The sender it copied from.
        sender: NodeId,
    },
    /// Delete every copy of the object (Table 1 `Delete`).
    DirDelete {
        /// The object.
        object: ObjectId,
    },
    /// Directory shard → holder: drop your local copy (delete fan-out).
    StoreRelease {
        /// The object.
        object: ObjectId,
    },
    /// Primary replica → backup replica: apply one directory op to your mirror of
    /// `shard`. Stamped with the primary's promotion epoch; backups reject ops from a
    /// lower epoch than they have seen (a deposed primary's stragglers).
    DirReplicate {
        /// Shard index the op belongs to.
        shard: u64,
        /// The shipping primary's promotion epoch.
        epoch: u64,
        /// The op to replay.
        op: DirOp,
    },

    // --------------------------------------------------------------- data plane ----
    /// Ask `holder` to stream an object starting at `offset` (the receiver-driven pull
    /// of §3.4.1; `offset > 0` happens when resuming after a sender failure, §3.5.1).
    PullRequest {
        /// The object.
        object: ObjectId,
        /// The receiver.
        requester: NodeId,
        /// Byte offset to start from.
        offset: u64,
    },
    /// Cancel an in-flight pull (receiver found a better source or is shutting down).
    PullCancel {
        /// The object.
        object: ObjectId,
        /// The receiver that is cancelling.
        requester: NodeId,
    },
    /// One pipelining block of object data pushed from sender to receiver.
    PushBlock {
        /// The object.
        object: ObjectId,
        /// Byte offset of this block.
        offset: u64,
        /// Total object size (repeated so receivers can allocate on first block).
        total_size: u64,
        /// Block contents.
        payload: Payload,
        /// `true` on the final block.
        complete: bool,
    },
    /// The sender cannot serve the pull (object evicted or deleted).
    PullError {
        /// The object.
        object: ObjectId,
        /// Human-readable reason.
        reason: String,
    },

    // ------------------------------------------------------------------- reduce ----
    /// Coordinator → participant: your place in the reduce tree (sent initially and
    /// re-sent whenever the dynamic tree changes, §3.4.2 / §3.5.2).
    ReduceInstruction(ReduceInstruction),
    /// Participant → parent: one block of (partially) reduced data.
    ReduceBlock {
        /// Reduce identifier (the target object id).
        target: ObjectId,
        /// Parent slot this block is destined for.
        to_slot: usize,
        /// Sender's slot.
        from_slot: usize,
        /// The parent epoch this block belongs to.
        parent_epoch: u64,
        /// Block index.
        block_index: u64,
        /// Total object size.
        object_size: u64,
        /// Block contents (already reduced over the sender's subtree).
        payload: Payload,
    },
    /// Participant → coordinator: the root finished materializing the target object.
    ReduceDone {
        /// Reduce identifier.
        target: ObjectId,
        /// Node holding the result.
        root: NodeId,
    },
    /// Coordinator → participants: the reduce completed; release every participant
    /// slot, parked early block, and routing entry for `target` (reduce-state GC).
    ReduceRelease {
        /// Reduce identifier.
        target: ObjectId,
    },
}

impl Message {
    /// Approximate wire size in bytes, used by the simulator's bandwidth model. Control
    /// messages are small and fixed-size; data-plane messages are dominated by their
    /// payload.
    pub fn wire_size(&self) -> u64 {
        const CONTROL: u64 = 96;
        match self {
            Message::PushBlock { payload, .. } => CONTROL + payload.len(),
            Message::ReduceBlock { payload, .. } => CONTROL + payload.len(),
            Message::DirPutInline { payload, .. } => CONTROL + payload.len(),
            Message::DirQueryReply { result: QueryResult::Inline { payload }, .. } => {
                CONTROL + payload.len()
            }
            Message::ReduceInstruction(instr) => CONTROL + 24 * instr.children.len() as u64,
            Message::DirQuery { exclude, .. } => CONTROL + 4 * exclude.len() as u64,
            Message::DirReplicate { op, .. } => match op {
                DirOp::PutInline { payload, .. } => 2 * CONTROL + payload.len(),
                DirOp::Query { exclude, .. } => 2 * CONTROL + 4 * exclude.len() as u64,
                _ => 2 * CONTROL,
            },
            _ => CONTROL,
        }
    }

    /// `true` for messages that belong to the bulk data plane (used by the simulator to
    /// prioritize control traffic the way small RPCs win on a real network).
    pub fn is_bulk(&self) -> bool {
        matches!(self, Message::PushBlock { .. } | Message::ReduceBlock { .. })
    }
}

/// A client-facing operation submitted to the local Hoplite node (Table 1).
#[derive(Clone, Debug, PartialEq)]
pub enum ClientOp {
    /// Store an object in the local store and publish its location.
    Put {
        /// The new object's id.
        object: ObjectId,
        /// Object contents (real or synthetic).
        payload: Payload,
    },
    /// Fetch an object into the local store (and hand it to the caller).
    Get {
        /// The object to fetch.
        object: ObjectId,
    },
    /// Create `target` by reducing `num_objects` of the given source objects.
    Reduce {
        /// Output object id.
        target: ObjectId,
        /// Candidate source objects (futures; they may not exist yet).
        sources: Vec<ObjectId>,
        /// How many of the sources to fold in (`None` = all of them).
        num_objects: Option<usize>,
        /// Operator and element type.
        spec: ReduceSpec,
        /// Force a specific tree degree instead of the runtime model's choice
        /// (`None` = pick from [`crate::config::HopliteConfig::reduce_degrees`]; used by
        /// the Appendix-B ablation).
        degree: Option<usize>,
    },
    /// Delete every copy of an object cluster-wide.
    Delete {
        /// The object to delete.
        object: ObjectId,
    },
}

/// Reply to a [`ClientOp`].
#[derive(Clone, Debug, PartialEq)]
pub enum ClientReply {
    /// `Put` finished copying into the local store.
    PutDone {
        /// The stored object.
        object: ObjectId,
    },
    /// `Get` completed; the payload is a complete copy of the object.
    GetDone {
        /// The fetched object.
        object: ObjectId,
        /// The object contents.
        payload: Payload,
    },
    /// `Reduce` was accepted and the coordinator is building the tree; fetch the target
    /// object with `Get` to obtain the result.
    ReduceAccepted {
        /// The reduce output object.
        target: ObjectId,
    },
    /// The target object of a `Reduce` issued on this node is now fully materialized at
    /// the tree root.
    ReduceComplete {
        /// The reduce output object.
        target: ObjectId,
    },
    /// `Delete` was dispatched.
    DeleteDone {
        /// The deleted object.
        object: ObjectId,
    },
    /// The operation failed.
    Error {
        /// What failed.
        error: HopliteError,
    },
}

/// Side effects requested by the node state machine; the driver executes them.
#[derive(Clone, Debug, PartialEq)]
pub enum Effect {
    /// Send a protocol message to a peer node.
    Send {
        /// Destination node.
        to: NodeId,
        /// The message.
        msg: Message,
    },
    /// Complete a client operation.
    Reply {
        /// The operation being answered.
        op: OpId,
        /// Its result.
        reply: ClientReply,
    },
    /// Ask the driver to call `handle_timer` with this token after `delay`.
    SetTimer {
        /// Token to hand back.
        token: TimerToken,
        /// Delay from now.
        delay: Duration,
    },
    /// Advisory: a local block of `object` became readable at the store (watermark
    /// advanced). Drivers that model worker-side pipelined `Get`s use this to stream
    /// data to workers before the object is complete; other drivers may ignore it.
    LocalProgress {
        /// The object making progress.
        object: ObjectId,
        /// New watermark in bytes.
        watermark: u64,
        /// Total size in bytes.
        total_size: u64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_size_tracks_payload() {
        let small = Message::DirQuery {
            object: ObjectId::from_name("x"),
            requester: NodeId(0),
            query_id: 1,
            exclude: vec![],
        };
        let big = Message::PushBlock {
            object: ObjectId::from_name("x"),
            offset: 0,
            total_size: 4096,
            payload: Payload::synthetic(4096),
            complete: true,
        };
        assert!(small.wire_size() < 200);
        assert!(big.wire_size() > 4096);
        assert!(big.is_bulk());
        assert!(!small.is_bulk());
    }

    #[test]
    fn messages_clone_and_compare() {
        let msg = Message::PushBlock {
            object: ObjectId::from_name("y"),
            offset: 128,
            total_size: 256,
            payload: Payload::from_vec(vec![1, 2, 3]),
            complete: false,
        };
        // Wire encoding itself is exercised by the transport crate's framing tests;
        // here we make sure the message is cloneable/comparable.
        let copy = msg.clone();
        assert_eq!(copy, msg);
    }

    #[test]
    fn reduce_instruction_equality() {
        let instr = ReduceInstruction {
            target: ObjectId::from_name("t"),
            coordinator: NodeId(0),
            slot: 3,
            own_object: ObjectId::from_name("s"),
            spec: ReduceSpec::sum_f32(),
            object_size: 1024,
            block_size: 256,
            num_inputs: 3,
            epoch: 0,
            parent: Some(ReduceParent { slot: 5, node: NodeId(2), epoch: 1 }),
            children: vec![(1, NodeId(4), ObjectId::from_name("c"))],
            is_root: false,
            total_slots: 6,
        };
        assert_eq!(instr.clone(), instr);
        let m = Message::ReduceInstruction(instr);
        assert!(m.wire_size() >= 96);
    }
}
