//! Facade-level tests for the node engines: broadcast, reduce, and the failure
//! adaptation rules, driven hand-over-hand through [`ObjectStoreNode`]'s public API.

use super::*;
use crate::buffer::Payload;
use crate::error::HopliteError;
use crate::protocol::{ClientOp, ClientReply, Effect};
use crate::reduce::ReduceSpec;

fn setup(n: usize) -> (Vec<ObjectStoreNode>, ClusterView) {
    let cluster = ClusterView::of_size(n);
    let cfg = HopliteConfig::small_for_tests();
    let nodes = cluster
        .nodes
        .iter()
        .map(|&id| ObjectStoreNode::new(id, cfg.clone(), cluster.clone(), NodeOptions::default()))
        .collect();
    (nodes, cluster)
}

/// A hand-driven test cluster: delivers effects FIFO (preserving the per-link ordering
/// that real transports and the simulator provide) and supports killing nodes
/// mid-run — messages to and from dead nodes are dropped and every survivor gets a
/// failure notification, exactly like a driver's failure detector.
struct TestCluster {
    nodes: Vec<ObjectStoreNode>,
    pending: std::collections::VecDeque<(NodeId, Vec<Effect>)>,
    replies: Vec<(NodeId, OpId, ClientReply)>,
    dead: std::collections::HashSet<usize>,
}

impl TestCluster {
    fn new(n: usize) -> TestCluster {
        let (nodes, _) = setup(n);
        TestCluster {
            nodes,
            pending: Default::default(),
            replies: Vec::new(),
            dead: Default::default(),
        }
    }

    fn client(&mut self, node: usize, op: OpId, request: ClientOp) {
        let mut out = Vec::new();
        self.nodes[node].handle_client(Time::ZERO, op, request, &mut out);
        self.pending.push_back((NodeId(node as u32), out));
    }

    /// Kill `node`: drop its queued traffic and notify every survivor.
    fn kill(&mut self, node: usize) {
        self.dead.insert(node);
        for (i, n) in self.nodes.iter_mut().enumerate() {
            if !self.dead.contains(&i) {
                let mut out = Vec::new();
                n.handle_peer_failed(Time::ZERO, NodeId(node as u32), &mut out);
                self.pending.push_back((NodeId(i as u32), out));
            }
        }
    }

    /// Deliver until quiescent.
    fn run(&mut self) {
        let mut steps = 0;
        while let Some((from, batch)) = self.pending.pop_front() {
            if self.dead.contains(&from.index()) {
                continue; // effects of a node that died before they were applied
            }
            for effect in batch {
                match effect {
                    Effect::Send { to, msg } => {
                        if self.dead.contains(&to.index()) {
                            continue; // dropped on the floor, like a real network
                        }
                        let mut out = Vec::new();
                        self.nodes[to.index()].handle_message(Time::ZERO, from, msg, &mut out);
                        self.pending.push_back((to, out));
                    }
                    Effect::Reply { op, reply } => self.replies.push((from, op, reply)),
                    Effect::SetTimer { .. }
                    | Effect::LocalProgress { .. }
                    | Effect::PeerDown { .. } => {}
                }
            }
            steps += 1;
            assert!(steps < 200_000, "message storm");
        }
    }

    fn reply_payload(&self, op: OpId) -> Option<Payload> {
        self.replies.iter().find_map(|(_, o, r)| match (o, r) {
            (o, ClientReply::GetDone { payload, .. }) if *o == op => Some(payload.clone()),
            _ => None,
        })
    }

    /// Restart `node` as a fresh process at `incarnation` (empty store, empty
    /// replicas) and let it begin directory recovery. Deliberately does *not*
    /// notify survivors — tests choose whether the detector or the rejoin
    /// messages themselves carry the news.
    fn restart(&mut self, node: usize, incarnation: u64) {
        self.dead.remove(&node);
        let cluster = ClusterView::of_size(self.nodes.len());
        let opts = NodeOptions { incarnation, ..Default::default() };
        self.nodes[node] = ObjectStoreNode::new(
            NodeId(node as u32),
            HopliteConfig::small_for_tests(),
            cluster,
            opts,
        );
        let mut out = Vec::new();
        self.nodes[node].begin_recovery(Time::ZERO, &mut out);
        self.pending.push_back((NodeId(node as u32), out));
    }

    /// Deliver the detector's recovery notice for `node` to every live peer.
    fn notify_recovered(&mut self, node: usize) {
        for (i, n) in self.nodes.iter_mut().enumerate() {
            if !self.dead.contains(&i) && i != node {
                let mut out = Vec::new();
                n.handle_peer_recovered(Time::ZERO, NodeId(node as u32), &mut out);
                self.pending.push_back((NodeId(i as u32), out));
            }
        }
    }

    /// Deliver a wire-level failure notice to one node.
    fn failure_notice(&mut self, to: usize, about: usize, incarnation: u64) {
        let mut out = Vec::new();
        self.nodes[to].handle_message(
            Time::ZERO,
            NodeId(to as u32),
            Message::PeerFailureNotice { node: NodeId(about as u32), incarnation },
            &mut out,
        );
        self.pending.push_back((NodeId(to as u32), out));
    }
}

/// An object whose directory shard initially lives on `shard_host`.
fn object_on_shard(cluster: &ClusterView, shard_host: NodeId) -> ObjectId {
    (0..)
        .map(|i| ObjectId::from_name(&format!("probe{i}")))
        .find(|&o| cluster.shard_node(o) == shard_host)
        .expect("some probe object hashes to every shard")
}

/// Deliver effects until quiescence, returning all client replies (legacy helper for
/// the failure-free tests below).
fn run_to_quiescence(
    nodes: &mut [ObjectStoreNode],
    effects: Vec<(NodeId, Vec<Effect>)>,
) -> Vec<(NodeId, OpId, ClientReply)> {
    let mut effects: std::collections::VecDeque<(NodeId, Vec<Effect>)> =
        effects.into_iter().collect();
    let mut replies = Vec::new();
    let mut steps = 0;
    while let Some((from, batch)) = effects.pop_front() {
        for effect in batch {
            match effect {
                Effect::Send { to, msg } => {
                    let mut out = Vec::new();
                    nodes[to.index()].handle_message(Time::ZERO, from, msg, &mut out);
                    effects.push_back((to, out));
                }
                Effect::Reply { op, reply } => replies.push((from, op, reply)),
                Effect::SetTimer { .. }
                | Effect::LocalProgress { .. }
                | Effect::PeerDown { .. } => {}
            }
        }
        steps += 1;
        assert!(steps < 100_000, "message storm");
    }
    replies
}

#[test]
fn put_then_remote_get_delivers_bytes() {
    let (mut nodes, _) = setup(4);
    let object = ObjectId::from_name("payload");
    let data: Vec<u8> = (0..5000u32).map(|i| (i % 251) as u8).collect();

    let mut out = Vec::new();
    nodes[0].handle_client(
        Time::ZERO,
        OpId(1),
        ClientOp::Put { object, payload: Payload::from_vec(data.clone()) },
        &mut out,
    );
    let replies = run_to_quiescence(&mut nodes, vec![(NodeId(0), out)]);
    assert!(replies
        .iter()
        .any(|(_, op, r)| *op == OpId(1) && matches!(r, ClientReply::PutDone { .. })));

    let mut out = Vec::new();
    nodes[2].handle_client(Time::ZERO, OpId(2), ClientOp::Get { object }, &mut out);
    let replies = run_to_quiescence(&mut nodes, vec![(NodeId(2), out)]);
    let got = replies
        .iter()
        .find_map(|(_, op, r)| match (op, r) {
            (OpId(2), ClientReply::GetDone { payload, .. }) => Some(payload.clone()),
            _ => None,
        })
        .expect("get completed");
    assert_eq!(got.as_bytes().unwrap().as_ref(), data.as_slice());
    assert!(nodes[2].has_complete(object));
}

#[test]
fn forward_transit_never_copies_payload_bytes() {
    // The relay role of receiver-driven broadcast (§3.4.1): blocks stream in from a
    // sender, land in the store, and are served onward to a chained receiver. The
    // whole transit — receive → append → read → send effect — must be zero payload
    // memcpys, asserted by the debug copy counter so a regression cannot hide.
    let (mut nodes, _) = setup(3);
    let object = ObjectId::from_name("transit");
    let block_len = 1024usize; // small_for_tests block size
    let total = 4 * block_len as u64;
    let blocks: Vec<Payload> =
        (0..4).map(|i| Payload::from_vec(vec![i as u8 + 1; block_len])).collect();
    crate::copytrace::reset();
    let mut fx = Vec::new();
    for (i, block) in blocks.iter().enumerate() {
        nodes[0].handle_message(
            Time::ZERO,
            NodeId(1),
            Message::PushBlock {
                object,
                offset: (i * block_len) as u64,
                total_size: total,
                payload: block.clone(),
                complete: i == 3,
            },
            &mut fx,
        );
    }
    nodes[0].handle_message(
        Time::ZERO,
        NodeId(2),
        Message::PullRequest { object, requester: NodeId(2), offset: 0 },
        &mut fx,
    );
    let forwarded: Vec<&Payload> = fx
        .iter()
        .filter_map(|e| match e {
            Effect::Send { to, msg: Message::PushBlock { payload, .. } } if *to == NodeId(2) => {
                Some(payload)
            }
            _ => None,
        })
        .collect();
    assert_eq!(forwarded.len(), 4);
    assert_eq!(
        crate::copytrace::bytes_copied(),
        0,
        "receive → store → forward transit must not memcpy payload bytes"
    );
    // Stronger than "no copies counted": each forwarded block aliases the storage of
    // the block that came in.
    for (incoming, outgoing) in blocks.iter().zip(&forwarded) {
        let in_ptr = incoming.as_bytes().unwrap().as_slice().as_ptr();
        let out_ptr = outgoing.segments().next().unwrap().as_slice().as_ptr();
        assert_eq!(in_ptr, out_ptr);
    }
}

#[test]
fn small_objects_use_inline_fast_path() {
    let (mut nodes, _) = setup(3);
    let object = ObjectId::from_name("tiny");
    let mut out = Vec::new();
    nodes[1].handle_client(
        Time::ZERO,
        OpId(1),
        ClientOp::Put { object, payload: Payload::from_vec(vec![42; 16]) },
        &mut out,
    );
    run_to_quiescence(&mut nodes, vec![(NodeId(1), out)]);
    let mut out = Vec::new();
    nodes[0].handle_client(Time::ZERO, OpId(2), ClientOp::Get { object }, &mut out);
    let replies = run_to_quiescence(&mut nodes, vec![(NodeId(0), out)]);
    assert!(replies.iter().any(|(_, _, r)| matches!(r, ClientReply::GetDone { .. })));
    // The fast path serves from the directory: the creator never received a pull.
    assert_eq!(nodes[1].metrics().pulls_served, 0);
}

#[test]
fn broadcast_to_many_receivers_completes_everywhere() {
    let (mut nodes, _) = setup(8);
    let object = ObjectId::from_name("model");
    let data: Vec<u8> = (0..10_000u32).map(|i| (i * 7 % 256) as u8).collect();
    let mut out = Vec::new();
    nodes[0].handle_client(
        Time::ZERO,
        OpId(1),
        ClientOp::Put { object, payload: Payload::from_vec(data.clone()) },
        &mut out,
    );
    run_to_quiescence(&mut nodes, vec![(NodeId(0), out)]);

    let mut initial = Vec::new();
    for r in 1..8u32 {
        let mut out = Vec::new();
        nodes[r as usize].handle_client(
            Time::ZERO,
            OpId(100 + r as u64),
            ClientOp::Get { object },
            &mut out,
        );
        initial.push((NodeId(r), out));
    }
    let replies = run_to_quiescence(&mut nodes, initial);
    let done = replies.iter().filter(|(_, _, r)| matches!(r, ClientReply::GetDone { .. })).count();
    assert_eq!(done, 7);
    for (r, node) in nodes.iter().enumerate().skip(1) {
        assert!(node.has_complete(object));
        assert_eq!(
            node.store().total_size(object),
            Some(data.len() as u64),
            "receiver {r} has full object"
        );
    }
}

#[test]
fn reduce_sums_across_nodes() {
    let (mut nodes, _) = setup(5);
    let sources: Vec<ObjectId> =
        (0..4).map(|i| ObjectId::from_name(&format!("grad-{i}"))).collect();
    // Each of nodes 1..=4 puts a gradient of 600 floats.
    let mut initial = Vec::new();
    for (i, &src) in sources.iter().enumerate() {
        let values: Vec<f32> = (0..600).map(|j| (i as f32) + (j as f32) * 0.001).collect();
        let mut out = Vec::new();
        nodes[i + 1].handle_client(
            Time::ZERO,
            OpId(10 + i as u64),
            ClientOp::Put { object: src, payload: Payload::from_f32s(&values) },
            &mut out,
        );
        initial.push((NodeId((i + 1) as u32), out));
    }
    run_to_quiescence(&mut nodes, initial);

    let target = ObjectId::from_name("sum");
    let mut out = Vec::new();
    nodes[0].handle_client(
        Time::ZERO,
        OpId(1),
        ClientOp::Reduce {
            target,
            sources: sources.clone(),
            num_objects: None,
            spec: ReduceSpec::sum_f32(),
            degree: None,
        },
        &mut out,
    );
    run_to_quiescence(&mut nodes, vec![(NodeId(0), out)]);

    let mut out = Vec::new();
    nodes[0].handle_client(Time::ZERO, OpId(2), ClientOp::Get { object: target }, &mut out);
    let replies = run_to_quiescence(&mut nodes, vec![(NodeId(0), out)]);
    let payload = replies
        .iter()
        .find_map(|(_, op, r)| match (op, r) {
            (OpId(2), ClientReply::GetDone { payload, .. }) => Some(payload.clone()),
            _ => None,
        })
        .expect("reduce result fetched");
    let values = payload.to_f32s();
    assert_eq!(values.len(), 600);
    for (j, v) in values.iter().enumerate() {
        let expected = (0..4).map(|i| i as f32 + j as f32 * 0.001).sum::<f32>();
        assert!((v - expected).abs() < 1e-3, "element {j}: {v} vs {expected}");
    }
}

#[test]
fn delete_removes_all_copies() {
    let (mut nodes, _) = setup(3);
    let object = ObjectId::from_name("temp");
    let mut out = Vec::new();
    nodes[0].handle_client(
        Time::ZERO,
        OpId(1),
        ClientOp::Put { object, payload: Payload::zeros(4000) },
        &mut out,
    );
    run_to_quiescence(&mut nodes, vec![(NodeId(0), out)]);
    let mut out = Vec::new();
    nodes[1].handle_client(Time::ZERO, OpId(2), ClientOp::Get { object }, &mut out);
    run_to_quiescence(&mut nodes, vec![(NodeId(1), out)]);
    assert!(nodes[1].has_complete(object));

    let mut out = Vec::new();
    nodes[2].handle_client(Time::ZERO, OpId(3), ClientOp::Delete { object }, &mut out);
    run_to_quiescence(&mut nodes, vec![(NodeId(2), out)]);
    assert!(!nodes[0].store().contains(object));
    assert!(!nodes[1].store().contains(object));
}

#[test]
fn get_before_put_parks_until_data_exists() {
    let (mut nodes, _) = setup(2);
    let object = ObjectId::from_name("future");
    let mut out = Vec::new();
    nodes[1].handle_client(Time::ZERO, OpId(1), ClientOp::Get { object }, &mut out);
    let replies = run_to_quiescence(&mut nodes, vec![(NodeId(1), out)]);
    assert!(replies.is_empty(), "nothing to reply yet");

    let mut out = Vec::new();
    nodes[0].handle_client(
        Time::ZERO,
        OpId(2),
        ClientOp::Put { object, payload: Payload::zeros(5000) },
        &mut out,
    );
    let replies = run_to_quiescence(&mut nodes, vec![(NodeId(0), out)]);
    assert!(replies.iter().any(|(node, op, r)| *node == NodeId(1)
        && *op == OpId(1)
        && matches!(r, ClientReply::GetDone { .. })));
}

#[test]
fn reduce_subset_uses_earliest_arrivals() {
    let (mut nodes, _) = setup(6);
    let sources: Vec<ObjectId> = (0..5).map(|i| ObjectId::from_name(&format!("s{i}"))).collect();
    let target = ObjectId::from_name("partial-sum");
    // Start the reduce before any source exists.
    let mut out = Vec::new();
    nodes[0].handle_client(
        Time::ZERO,
        OpId(1),
        ClientOp::Reduce {
            target,
            sources: sources.clone(),
            num_objects: Some(3),
            spec: ReduceSpec::sum_f32(),
            degree: Some(2),
        },
        &mut out,
    );
    run_to_quiescence(&mut nodes, vec![(NodeId(0), out)]);

    // Only three sources ever appear (on nodes 1..=3), each a constant vector.
    let mut initial = Vec::new();
    for i in 0..3usize {
        let values = vec![(i + 1) as f32; 300];
        let mut out = Vec::new();
        nodes[i + 1].handle_client(
            Time::ZERO,
            OpId(10 + i as u64),
            ClientOp::Put { object: sources[i], payload: Payload::from_f32s(&values) },
            &mut out,
        );
        initial.push((NodeId((i + 1) as u32), out));
    }
    run_to_quiescence(&mut nodes, initial);

    let mut out = Vec::new();
    nodes[0].handle_client(Time::ZERO, OpId(2), ClientOp::Get { object: target }, &mut out);
    let replies = run_to_quiescence(&mut nodes, vec![(NodeId(0), out)]);
    let payload = replies
        .iter()
        .find_map(|(_, op, r)| match (op, r) {
            (OpId(2), ClientReply::GetDone { payload, .. }) => Some(payload.clone()),
            _ => None,
        })
        .expect("subset reduce completed with 3 of 5 sources");
    for v in payload.to_f32s() {
        assert!((v - 6.0).abs() < 1e-4, "1 + 2 + 3 = 6, got {v}");
    }
}

// ------------------------------------------------------------ failure-seam tests --

/// §3.5.1: a receiver whose sender dies re-pulls from a surviving copy through a fresh
/// directory query, keeping the blocks it already has, and the Get still completes.
#[test]
fn broadcast_repulls_after_sender_loss() {
    let mut tc = TestCluster::new(4);
    // The seed does not replicate directory shards (§3.5 notes the paper uses
    // replication for that), so pick an object whose shard lives on node 3 — a node
    // that is neither a copy holder (0, 1) nor the receiver under test (2).
    let cluster = ClusterView::of_size(4);
    let object = (0u64..)
        .map(|k| ObjectId::from_name(&format!("failover-object-{k}")))
        .find(|&o| cluster.shard_node(o).index() == 3)
        .unwrap();
    let data: Vec<u8> = (0..8000u32).map(|i| (i * 13 % 251) as u8).collect();

    // Node 0 creates the object; node 1 fetches a full copy.
    tc.client(0, OpId(1), ClientOp::Put { object, payload: Payload::from_vec(data.clone()) });
    tc.run();
    tc.client(1, OpId(2), ClientOp::Get { object });
    tc.run();
    assert!(tc.nodes[1].has_complete(object));

    // Node 2 asks for the object but we intercept before delivery: run only the
    // directory exchange by hand so the pull is "in flight" when the sender dies.
    let mut out = Vec::new();
    tc.nodes[2].handle_client(Time::ZERO, OpId(3), ClientOp::Get { object }, &mut out);
    // Deliver everything except PushBlock data, so node 2 is registered as pulling
    // from its chosen sender but has not received a byte yet.
    let mut parked_sender = None;
    let mut queue: std::collections::VecDeque<(NodeId, Vec<Effect>)> =
        vec![(NodeId(2), out)].into();
    while let Some((from, batch)) = queue.pop_front() {
        for effect in batch {
            if let Effect::Send { to, msg } = effect {
                if let Message::PullRequest { .. } = &msg {
                    parked_sender = Some(to);
                    continue; // drop the pull: the sender dies before serving it
                }
                let mut out = Vec::new();
                tc.nodes[to.index()].handle_message(Time::ZERO, from, msg, &mut out);
                queue.push_back((to, out));
            }
        }
    }
    let victim = parked_sender.expect("directory assigned a sender").index();
    assert!(!tc.nodes[2].has_complete(object));

    // The sender dies; the failure detector tells everyone.
    tc.kill(victim);
    tc.run();

    // Node 2 failed over to a surviving holder and completed with identical bytes.
    tc.client(2, OpId(4), ClientOp::Get { object });
    tc.run();
    let got = tc.reply_payload(OpId(4)).expect("get completed after failover");
    assert_eq!(got.as_bytes().unwrap().as_ref(), data.as_slice());
    assert!(tc.nodes[2].metrics().broadcast_failovers >= 1, "receiver recorded a failover");
}

/// §3.5.2: when a reduce participant's node dies mid-reduce, the coordinator vacates
/// its slot, bumps the ancestors' epochs (re-parenting the survivors), and the reduce
/// completes once a replacement copy of the lost input appears elsewhere.
#[test]
fn reduce_reparents_after_participant_failure() {
    let mut tc = TestCluster::new(7);
    // Directory shards are not replicated in the seed, so derive object names whose
    // shards all avoid node 2 (the participant we will kill): killing it must take
    // down a reduce participant, not the metadata for its input.
    let cluster = ClusterView::of_size(7);
    let (sources, target) = (0u64..)
        .map(|k| {
            let sources: Vec<ObjectId> =
                (0..4).map(|i| ObjectId::from_name(&format!("rf-{k}-{i}"))).collect();
            let target = ObjectId::from_name(&format!("rf-{k}-sum"));
            (sources, target)
        })
        .find(|(sources, target)| {
            sources
                .iter()
                .chain(std::iter::once(target))
                .all(|&o| cluster.shard_node(o).index() != 2)
        })
        .unwrap();

    // Start the reduce before any input exists; a chain (degree 1) maximizes the
    // ancestor set that must reset on failure.
    tc.client(
        0,
        OpId(1),
        ClientOp::Reduce {
            target,
            sources: sources.clone(),
            num_objects: None,
            spec: ReduceSpec::sum_f32(),
            degree: Some(1),
        },
    );
    tc.run();

    // Three of the four inputs appear on nodes 1..=3; the reduce cannot finish yet.
    for (i, &source) in sources.iter().enumerate().take(3) {
        let values = vec![(i + 1) as f32; 400];
        tc.client(
            i + 1,
            OpId(10 + i as u64),
            ClientOp::Put { object: source, payload: Payload::from_f32s(&values) },
        );
    }
    tc.run();
    assert!(!tc.nodes.iter().any(|n| n.has_complete(target)), "reduce still pending");

    // Node 2 (owner of source 1, value 2.0) dies. The coordinator must vacate its
    // slot and bump the epochs of its ancestors.
    tc.kill(2);
    tc.run();

    // The lost input is recreated on node 5 (the task framework's lineage
    // reconstruction would do this), and the final input appears on node 4.
    tc.client(
        5,
        OpId(20),
        ClientOp::Put { object: sources[1], payload: Payload::from_f32s(&vec![2.0f32; 400]) },
    );
    tc.client(
        4,
        OpId(21),
        ClientOp::Put { object: sources[3], payload: Payload::from_f32s(&vec![4.0f32; 400]) },
    );
    tc.run();

    // The repaired tree completes: 1 + 2 + 3 + 4 = 10, bit-exact.
    tc.client(0, OpId(30), ClientOp::Get { object: target });
    tc.run();
    let payload = tc.reply_payload(OpId(30)).expect("reduce completed after repair");
    let values = payload.to_f32s();
    assert_eq!(values.len(), 400);
    for v in values {
        assert!((v - 10.0).abs() < 1e-4, "expected 10, got {v}");
    }
    // At least one survivor cleared a partial accumulation (epoch bump observed).
    let resets: u64 = tc.nodes.iter().map(|n| n.metrics().reduce_resets).sum();
    assert!(resets >= 1, "some participant reset its accumulation");
}

/// A Get whose only copy disappears with a failed node parks (rather than erroring or
/// hanging the engine) and completes when the object is recreated.
#[test]
fn get_survives_total_copy_loss_until_recreation() {
    let mut tc = TestCluster::new(4);
    let object = ObjectId::from_name("sole-copy");
    // Choose a creator that is NOT the directory shard for the object, so killing the
    // creator does not take the directory down with it.
    let shard = ClusterView::of_size(4).shard_node(object).index();
    let creator = (shard + 1) % 4;
    let getter = (shard + 2) % 4;
    let data = vec![7u8; 4000];

    tc.client(creator, OpId(1), ClientOp::Put { object, payload: Payload::from_vec(data.clone()) });
    tc.run();

    // Park a get at `getter` with the pull dropped (sender dies before serving).
    let mut out = Vec::new();
    tc.nodes[getter].handle_client(Time::ZERO, OpId(2), ClientOp::Get { object }, &mut out);
    let mut queue: std::collections::VecDeque<(NodeId, Vec<Effect>)> =
        vec![(NodeId(getter as u32), out)].into();
    while let Some((from, batch)) = queue.pop_front() {
        for effect in batch {
            if let Effect::Send { to, msg } = effect {
                if matches!(msg, Message::PullRequest { .. }) {
                    continue;
                }
                let mut out = Vec::new();
                tc.nodes[to.index()].handle_message(Time::ZERO, from, msg, &mut out);
                queue.push_back((to, out));
            }
        }
    }

    // The only holder dies: the re-query must park (no usable location), not error.
    tc.kill(creator);
    tc.run();
    assert!(tc.reply_payload(OpId(2)).is_none(), "get is parked, not failed");

    // The object is recreated elsewhere; the parked query is finally answered.
    let recreator = shard; // any survivor
    tc.client(
        recreator,
        OpId(3),
        ClientOp::Put { object, payload: Payload::from_vec(data.clone()) },
    );
    tc.run();
    let got = tc.reply_payload(OpId(2)).expect("parked get completed after recreation");
    assert_eq!(got.as_bytes().unwrap().as_ref(), data.as_slice());
}

/// Reduce-state GC: once a reduce completes, every node's reduce maps (participants,
/// coordinators, routing, parked blocks) are empty and the coordinator's directory
/// subscriptions are closed.
#[test]
fn reduce_state_is_released_after_completion() {
    let mut tc = TestCluster::new(5);
    let sources: Vec<ObjectId> = (0..4).map(|i| ObjectId::from_name(&format!("gc-{i}"))).collect();
    for (i, &src) in sources.iter().enumerate() {
        tc.client(
            i + 1,
            OpId(10 + i as u64),
            ClientOp::Put { object: src, payload: Payload::from_f32s(&vec![1.0f32; 400]) },
        );
    }
    tc.run();
    let target = ObjectId::from_name("gc-sum");
    tc.client(
        0,
        OpId(1),
        ClientOp::Reduce {
            target,
            sources,
            num_objects: None,
            spec: ReduceSpec::sum_f32(),
            degree: Some(2),
        },
    );
    tc.run();
    tc.client(0, OpId(2), ClientOp::Get { object: target });
    tc.run();
    assert!(tc.reply_payload(OpId(2)).is_some(), "reduce completed");
    for (i, node) in tc.nodes.iter().enumerate() {
        assert!(node.reduce_state_is_empty(), "node {i} still holds reduce state");
        assert_eq!(
            node.directory_subscription_count(),
            0,
            "node {i} still holds directory subscriptions"
        );
    }
}

// ------------------------------------------------- directory failover seam tests --

/// §3.5: killing the primary of a directory shard loses no object-location records —
/// the promoted backup has the full replicated state and keeps serving queries.
#[test]
fn directory_primary_failure_preserves_metadata() {
    let mut tc = TestCluster::new(4);
    // Shard s is primaried by node s with node (s+1) % 4 as backup. Use shard 3.
    let object = (0u64..)
        .map(|k| ObjectId::from_name(&format!("dir-fo-{k}")))
        .find(|&o| ClusterView::of_size(4).shard_node(o).index() == 3)
        .unwrap();
    let data: Vec<u8> = (0..6000u32).map(|i| (i * 11 % 251) as u8).collect();
    tc.client(1, OpId(1), ClientOp::Put { object, payload: Payload::from_vec(data.clone()) });
    tc.run();
    assert!(tc.nodes[3].is_directory_primary_for(object));
    let at_primary = tc.nodes[3].directory_locations(object).expect("primary hosts the shard");
    assert!(at_primary.iter().any(|(n, _)| *n == NodeId(1)), "location registered");

    // The primary dies. The backup (node 0) promotes itself and still has the record.
    tc.kill(3);
    tc.run();
    assert!(tc.nodes[0].is_directory_primary_for(object), "backup promoted");
    let at_backup = tc.nodes[0].directory_locations(object).expect("backup hosts the shard");
    assert_eq!(at_backup, at_primary, "no location record lost with the primary");

    // And the metadata is live: a fresh Get resolves through the new primary.
    tc.client(2, OpId(2), ClientOp::Get { object });
    tc.run();
    let got = tc.reply_payload(OpId(2)).expect("get served after directory failover");
    assert_eq!(got.as_bytes().unwrap().as_ref(), data.as_slice());
}

/// A location query that parked on the old primary is not lost: the requester
/// re-issues it at the promoted backup (same correlation id, deduplicated by the
/// shard) and it completes once the object appears.
#[test]
fn parked_query_survives_primary_failure() {
    let mut tc = TestCluster::new(4);
    let object = (0u64..)
        .map(|k| ObjectId::from_name(&format!("parked-fo-{k}")))
        .find(|&o| ClusterView::of_size(4).shard_node(o).index() == 3)
        .unwrap();
    // The Get parks: no location exists yet.
    tc.client(2, OpId(1), ClientOp::Get { object });
    tc.run();
    assert!(tc.reply_payload(OpId(1)).is_none());

    // The shard primary dies while the query is parked on it (and replicated).
    tc.kill(3);
    tc.run();
    assert!(
        tc.nodes[2].metrics().directory_failovers >= 1,
        "requester re-issued its outstanding query at the new primary"
    );

    // The object appears; the promoted backup answers the parked query.
    let data = vec![3u8; 4000];
    tc.client(1, OpId(2), ClientOp::Put { object, payload: Payload::from_vec(data.clone()) });
    tc.run();
    let got = tc.reply_payload(OpId(1)).expect("parked get completed after failover");
    assert_eq!(got.as_bytes().unwrap().as_ref(), data.as_slice());
}

/// An inline (small) object survives a directory-primary failure: the creator
/// re-drives the payload-bearing registration so the promoted backup can keep
/// serving the inline fast path.
#[test]
fn inline_object_survives_primary_failure() {
    let mut tc = TestCluster::new(4);
    let object = (0u64..)
        .map(|k| ObjectId::from_name(&format!("inline-fo-{k}")))
        .find(|&o| ClusterView::of_size(4).shard_node(o).index() == 3)
        .unwrap();
    let data: Vec<u8> = (0..32u32).map(|i| i as u8).collect(); // below inline threshold
    tc.client(1, OpId(1), ClientOp::Put { object, payload: Payload::from_vec(data.clone()) });
    tc.run();
    tc.kill(3);
    tc.run();
    tc.client(2, OpId(2), ClientOp::Get { object });
    tc.run();
    let got = tc.reply_payload(OpId(2)).expect("inline get served by the promoted backup");
    assert_eq!(got.as_bytes().unwrap().as_ref(), data.as_slice());
}

/// Puts of an object that already exists fail fast with `ObjectAlreadyExists`.
#[test]
fn duplicate_put_is_rejected() {
    let (mut nodes, _) = setup(2);
    let object = ObjectId::from_name("dup");
    let mut out = Vec::new();
    nodes[0].handle_client(
        Time::ZERO,
        OpId(1),
        ClientOp::Put { object, payload: Payload::zeros(2000) },
        &mut out,
    );
    run_to_quiescence(&mut nodes, vec![(NodeId(0), out)]);
    let mut out = Vec::new();
    nodes[0].handle_client(
        Time::ZERO,
        OpId(2),
        ClientOp::Put { object, payload: Payload::zeros(2000) },
        &mut out,
    );
    let replies = run_to_quiescence(&mut nodes, vec![(NodeId(0), out)]);
    assert!(replies.iter().any(|(_, op, r)| *op == OpId(2)
        && matches!(r, ClientReply::Error { error: HopliteError::ObjectAlreadyExists(_) })));
}

// ------------------------------------------------------ incarnation numbers ----

/// A failure notice naming an incarnation that already restarted is dropped: it
/// must neither mark the node failed nor disturb the routing view ("late notices
/// can't park a restarted node as resyncing forever").
#[test]
fn stale_failure_notice_cannot_repark_restarted_node() {
    let mut tc = TestCluster::new(4);
    tc.kill(2);
    tc.run();
    tc.restart(2, 1);
    tc.notify_recovered(2);
    tc.run();
    assert!(!tc.nodes[2].directory_is_resyncing(), "node 2 readmitted");
    assert!(tc.nodes[0].membership().is_alive(NodeId(2)));
    assert_eq!(tc.nodes[0].membership().incarnation_of(NodeId(2)), 1);

    let cluster = ClusterView::of_size(4);
    let probe = object_on_shard(&cluster, NodeId(2));
    let primary_before = tc.nodes[0].directory_primary_for(probe);

    // A late notice about the *dead* incarnation 0 arrives after the restart.
    tc.failure_notice(0, 2, 0);
    tc.run();
    assert_eq!(tc.nodes[0].metrics().stale_failure_notices_dropped, 1);
    assert!(tc.nodes[0].membership().is_alive(NodeId(2)), "node 2 still alive");
    assert_eq!(tc.nodes[0].directory_primary_for(probe), primary_before, "routing undisturbed");
}

/// A failure notice for the *current* incarnation supersedes: it runs the full
/// §3.5 failure machinery exactly once, and duplicates are absorbed without being
/// miscounted as stale.
#[test]
fn newer_incarnation_failure_notice_supersedes() {
    let mut tc = TestCluster::new(4);
    let cluster = ClusterView::of_size(4);
    let probe = object_on_shard(&cluster, NodeId(2));
    assert_eq!(tc.nodes[0].directory_primary_for(probe), Some(NodeId(2)));

    // A fresh wire-level notice (incarnation 0 is current) applies: node 0 fails
    // over the shard to its backup.
    tc.dead.insert(2); // notice-driven, not detector-driven: mute the dead node
    tc.failure_notice(0, 2, 0);
    tc.run();
    assert!(!tc.nodes[0].membership().is_alive(NodeId(2)));
    let promoted = tc.nodes[0].directory_primary_for(probe);
    assert_ne!(promoted, Some(NodeId(2)), "shard failed over away from node 2");

    // A duplicate of the same notice is a no-op — and *not* counted stale.
    tc.failure_notice(0, 2, 0);
    tc.run();
    assert_eq!(tc.nodes[0].metrics().stale_failure_notices_dropped, 0);

    // Node 2 restarts as incarnation 1 and is readmitted; a notice for the new
    // incarnation supersedes the old knowledge and applies again.
    tc.restart(2, 1);
    tc.notify_recovered(2);
    tc.run();
    assert!(tc.nodes[0].membership().is_alive(NodeId(2)));
    tc.dead.insert(2);
    tc.failure_notice(0, 2, 1);
    tc.run();
    assert!(!tc.nodes[0].membership().is_alive(NodeId(2)));
    assert_eq!(tc.nodes[0].membership().incarnation_of(NodeId(2)), 1);
}

/// A restarted node's first gossip round — the membership digest answered to its
/// rejoin snapshot requests — teaches it deaths it slept through, so its routing
/// view stops pointing at nodes that died while it was down.
#[test]
fn restarted_node_learns_deaths_it_slept_through() {
    let mut tc = TestCluster::new(4);
    // Node 1 dies first; then node 3 dies — node 1 is down and never hears of it.
    tc.kill(1);
    tc.run();
    tc.kill(3);
    tc.run();

    let cluster = ClusterView::of_size(4);
    let probe = object_on_shard(&cluster, NodeId(3));
    assert_ne!(tc.nodes[0].directory_primary_for(probe), Some(NodeId(3)));

    // Node 1 restarts and rejoins purely through its own snapshot requests (no
    // detector notice reaches anyone). Fresh state: it still believes node 3 is
    // alive and primary of its shard.
    tc.restart(1, 1);
    assert_eq!(tc.nodes[1].directory_primary_for(probe), Some(NodeId(3)));
    tc.run();

    assert!(!tc.nodes[1].directory_is_resyncing(), "node 1 resynced");
    assert!(!tc.nodes[1].membership().is_alive(NodeId(3)), "digest taught node 1 that node 3 died");
    assert!(tc.nodes[1].metrics().membership_deaths_learned >= 1);
    assert_ne!(
        tc.nodes[1].directory_primary_for(probe),
        Some(NodeId(3)),
        "node 1's routing no longer points at the dead node"
    );
    // And the sources learned node 1's new incarnation from its digest.
    assert_eq!(tc.nodes[0].membership().incarnation_of(NodeId(1)), 1);
    assert!(tc.nodes[0].membership().is_alive(NodeId(1)));
}
