//! The reduce *coordinator* engine (§3.4.2): grows a dynamic d-ary tree in input
//! arrival order and keeps every participant's instruction current.
//!
//! The coordinator lives on the node where the client called `Reduce`. It subscribes
//! to every source object's directory shard; each location publication offers that
//! object to the [`ReduceTreePlan`], which assigns it the next in-order slot and
//! reports which slots' instructions changed. The failure half of coordination — slot
//! vacation, epoch bumps, refills — lives in [`super::failure`].

use crate::error::HopliteError;
use crate::object::{NodeId, ObjectId};
use crate::protocol::{ClientReply, Effect, Message, OpId, ReduceInstruction, ReduceParent};
use crate::reduce::{DegreeModel, ReduceInput, ReduceSpec, ReduceTreePlan};

use super::reduce::ReduceEngine;
use super::{trace, NodeContext};

/// Coordinator state for a reduce initiated on this node.
#[derive(Debug)]
pub(crate) struct ReduceCoordinator {
    pub(super) target: ObjectId,
    /// Source set, used to unsubscribe on completion (and for diagnostics).
    sources: Vec<ObjectId>,
    num_objects: usize,
    spec: ReduceSpec,
    degree_override: Option<usize>,
    object_size: Option<u64>,
    pub(crate) plan: Option<ReduceTreePlan>,
    notify_op: Option<OpId>,
}

impl ReduceEngine {
    // -------------------------------------------------------------- coordination --

    /// Start coordinating a reduce on this node (Table 1 `Reduce`).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn client_reduce(
        &mut self,
        ctx: &mut NodeContext,
        op_id: OpId,
        target: ObjectId,
        sources: Vec<ObjectId>,
        num_objects: Option<usize>,
        spec: ReduceSpec,
        degree: Option<usize>,
        out: &mut Vec<Effect>,
    ) {
        let n = num_objects.unwrap_or(sources.len());
        if n == 0 || n > sources.len() || sources.is_empty() {
            out.push(Effect::Reply {
                op: op_id,
                reply: ClientReply::Error {
                    error: HopliteError::NotEnoughReduceInputs {
                        target,
                        requested: n,
                        available: sources.len(),
                    },
                },
            });
            return;
        }
        ctx.metrics.reduces_coordinated += 1;
        let coord = ReduceCoordinator {
            target,
            sources: sources.clone(),
            num_objects: n,
            spec,
            degree_override: degree,
            object_size: None,
            plan: None,
            notify_op: Some(op_id),
        };
        self.coordinators.insert(target, coord);
        // Subscribe to every source's directory shard; publications drive the dynamic
        // tree construction in arrival order (§3.4.2). Going through the directory
        // client journals the subscription, so it survives a shard-primary failover.
        for source in sources {
            self.source_routing.entry(source).or_default().push(target);
            ctx.dir_subscribe(source, out);
        }
        out.push(Effect::Reply { op: op_id, reply: ClientReply::ReduceAccepted { target } });
    }

    /// A directory publication for a subscribed source arrived: offer it to every plan
    /// consuming it and (re-)issue the affected instructions.
    pub(crate) fn on_dir_publish(
        &mut self,
        ctx: &mut NodeContext,
        object: ObjectId,
        holder: NodeId,
        size: u64,
        out: &mut Vec<Effect>,
    ) {
        let Some(targets) = self.source_routing.get(&object).cloned() else { return };
        trace!("[n{}] publish {:?} holder={:?} size={}", ctx.id.0, object, holder, size);
        for target in targets {
            // A completed reduce is no longer in the map (torn down by
            // on_reduce_done), so a late publication for it falls through here.
            let Some(mut coord) = self.coordinators.remove(&target) else { continue };
            if coord.object_size.is_none() {
                coord.object_size = Some(size);
            }
            if coord.plan.is_none() {
                let object_size = coord.object_size.expect("size just set");
                let resolved_degree = match coord.degree_override {
                    Some(d) => {
                        if d == 0 || d >= coord.num_objects {
                            coord.num_objects
                        } else {
                            d
                        }
                    }
                    None => {
                        let model = DegreeModel {
                            latency: ctx.cfg.estimated_latency,
                            bandwidth: ctx.cfg.estimated_bandwidth,
                        };
                        model.choose(&ctx.cfg.reduce_degrees, coord.num_objects, object_size)
                    }
                };
                coord.plan = Some(ReduceTreePlan::new(coord.num_objects, resolved_degree.max(1)));
            }
            let delta = coord
                .plan
                .as_mut()
                .expect("plan created above")
                .offer_input(ReduceInput { object, node: holder });
            Self::issue_instructions(ctx, &coord, &delta.affected_slots, out);
            self.coordinators.insert(target, coord);
        }
    }

    /// Send (or re-send) the participant instructions for the given slots.
    pub(crate) fn issue_instructions(
        ctx: &mut NodeContext,
        coord: &ReduceCoordinator,
        slots: &[usize],
        out: &mut Vec<Effect>,
    ) {
        let Some(plan) = coord.plan.as_ref() else { return };
        let Some(object_size) = coord.object_size else { return };
        for &slot in slots {
            let Some(view) = plan.slot_view(slot) else { continue };
            let instr = ReduceInstruction {
                target: coord.target,
                coordinator: ctx.id,
                slot,
                own_object: view.input.object,
                spec: coord.spec,
                object_size,
                block_size: ctx.cfg.block_size,
                num_inputs: view.num_inputs,
                epoch: view.epoch,
                parent: view.parent.map(|(pslot, pinput, pepoch)| ReduceParent {
                    slot: pslot,
                    node: pinput.node,
                    epoch: pepoch,
                }),
                children: view
                    .children
                    .iter()
                    .map(|(cslot, cinput)| (*cslot, cinput.node, cinput.object))
                    .collect(),
                is_root: view.is_root,
                total_slots: plan.shape().len(),
            };
            trace!(
                "[n{}] instr slot={} -> {:?} epoch={} parent={:?} num_inputs={}",
                ctx.id.0,
                slot,
                view.input.node,
                view.epoch,
                instr.parent,
                view.num_inputs
            );
            ctx.send(view.input.node, Message::ReduceInstruction(instr), out);
        }
    }

    /// The root finished materializing `target`: complete the client's reduce, then
    /// tear the whole reduce down — unsubscribe from the sources, tell every
    /// participant node to release its slots, and drop the coordinator itself. A
    /// straggling duplicate `ReduceDone` finds no coordinator and is a no-op.
    pub(crate) fn on_reduce_done(
        &mut self,
        ctx: &mut NodeContext,
        target: ObjectId,
        out: &mut Vec<Effect>,
    ) {
        let Some(coord) = self.coordinators.remove(&target) else { return };
        if let Some(op) = coord.notify_op {
            out.push(Effect::Reply { op, reply: ClientReply::ReduceComplete { target } });
        }
        for source in &coord.sources {
            if let Some(targets) = self.source_routing.get_mut(source) {
                targets.retain(|t| *t != target);
                if targets.is_empty() {
                    self.source_routing.remove(source);
                    ctx.dir_unsubscribe(*source, out);
                }
            }
        }
        if let Some(plan) = &coord.plan {
            let mut notified = std::collections::HashSet::new();
            for slot in 0..plan.shape().len() {
                if let Some(input) = plan.assignment(slot) {
                    if notified.insert(input.node) {
                        ctx.send(input.node, Message::ReduceRelease { target }, out);
                    }
                }
            }
        }
        trace!("[n{}] reduce {:?} complete, state released", ctx.id.0, target);
    }
}
