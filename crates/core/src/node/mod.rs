//! The per-node Hoplite state machine.
//!
//! An [`ObjectStoreNode`] is a *facade* over three layered protocol engines plus the
//! directory shard this node hosts:
//!
//! * [`broadcast`] — the receiver-driven broadcast engine (§3.4.1): in-progress `Get`s,
//!   the pull protocol, outgoing block transfers, and the pipelined `Put` ingest path
//!   (§3.3);
//! * [`reduce`] — the reduce engines (§3.4.2): the coordinator that grows dynamic
//!   d-ary trees from arrival order, and the per-slot participant that accumulates and
//!   streams partially-reduced blocks;
//! * [`failure`] — the failure-adaptation rules (§3.5): broadcast re-pull after sender
//!   loss and reduce-tree re-parenting with epoch bumps.
//!
//! Each engine owns its state and talks to the world exclusively through the shared
//! [`NodeContext`] (identity, config, local store, metrics, loopback queue), emitting
//! [`Effect`]s for the driver to execute. The facade dispatches client operations,
//! protocol messages, timers and peer-failure notifications to the right engine and
//! routes cross-engine follow-ups (an object making local progress wakes both the
//! broadcast forwarding path and any reduce participants consuming it).
//!
//! The node is entirely sans-IO: the same state machine runs unchanged under the
//! discrete-event simulator (cluster scale, synthetic payloads) and over the real
//! in-process / TCP transports (real bytes, real reductions), driven by the shared
//! `NodeRuntime` in `hoplite-cluster`.

mod broadcast;
mod coordinator;
mod failure;
mod reduce;
#[cfg(test)]
mod tests;

use std::collections::VecDeque;

use crate::buffer::Payload;
use crate::config::HopliteConfig;
use crate::detector::{DetectorAction, FailureDetector, GossipEntry, GossipState};
use crate::directory::{DirectoryClient, DirectoryService};
use crate::membership::{AliveVerdict, FailureVerdict, MembershipView};
use crate::metrics::NodeMetrics;
use crate::object::{NodeId, ObjectId, ObjectStatus};
use crate::protocol::{ClientOp, DirOp, Effect, Message, OpId, TimerToken};
use crate::store::LocalStore;
use crate::time::{Duration, Time};

use broadcast::BroadcastEngine;
use reduce::{ReduceEngine, ReduceEvent};

/// Protocol-level debug tracing, enabled by setting `HOPLITE_TRACE=1` in the
/// environment. Used to diagnose message-ordering races; costs one cached boolean
/// check per site when disabled.
macro_rules! trace {
    ($($t:tt)*) => {
        if $crate::node::trace_enabled() {
            eprintln!($($t)*);
        }
    };
}
pub(crate) use trace;

/// Whether `HOPLITE_TRACE` tracing is on (computed once per process).
pub(crate) fn trace_enabled() -> bool {
    static ENABLED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ENABLED.get_or_init(|| std::env::var_os("HOPLITE_TRACE").is_some())
}

/// Static description of the cluster shared by every node: the node set and the
/// directory sharding function.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClusterView {
    /// All node ids, in index order.
    pub nodes: Vec<NodeId>,
}

impl ClusterView {
    /// A cluster of `n` nodes numbered `0..n`.
    pub fn of_size(n: usize) -> ClusterView {
        ClusterView { nodes: (0..n as u32).map(NodeId).collect() }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` for an empty cluster (never used in practice).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node that *initially* hosts the primary of the directory shard responsible
    /// for `object` (§3.2: a sharded hash table, one shard per node by default). With
    /// replication (§3.5) the primary can move to a backup after a failure; live
    /// routing goes through [`crate::directory::DirectoryClient`], which uses the same
    /// hash, so this function stays correct for failure-free placement reasoning.
    pub fn shard_node(&self, object: ObjectId) -> NodeId {
        let h = u64::from_le_bytes(object.0[..8].try_into().expect("object id width"));
        self.nodes[(h % self.nodes.len() as u64) as usize]
    }
}

/// Node-level options that are not protocol parameters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NodeOptions {
    /// Use length-only payloads (simulator mode).
    pub synthetic_data: bool,
    /// Model the worker→store copy of `Put` as a pipelined, timed copy instead of an
    /// instantaneous one (§3.3). The simulator enables this; real transports complete
    /// the copy inline.
    pub pipelined_put: bool,
    /// This process's incarnation number: 0 on cold boot, bumped by whoever restarts
    /// the process (the simulator, `LocalCluster`, or `hoplitectl`). Carried on
    /// liveness messages so peers can order them against failure notices.
    pub incarnation: u64,
}

/// Shared, engine-agnostic node state: identity, configuration, the local object
/// store, the failover-aware directory client, metrics, and the loopback message
/// queue. Engines receive `&mut NodeContext` with every call and emit [`Effect`]s
/// through it.
pub(crate) struct NodeContext {
    pub(crate) id: NodeId,
    pub(crate) cfg: HopliteConfig,
    pub(crate) opts: NodeOptions,
    pub(crate) store: LocalStore,
    pub(crate) metrics: NodeMetrics,
    /// Every directory interaction of this node goes through this client: it resolves
    /// the shard's current primary and journals what must be re-driven on failover.
    pub(crate) directory: DirectoryClient,
    /// Incarnation-numbered liveness view: arbitrates stale vs. fresh failure and
    /// recovery evidence, and produces the digest carried at rejoin.
    pub(crate) membership: MembershipView,
    next_query_id: u64,
    next_timer: u64,
    /// Messages this node sent to itself, processed at the end of each handler.
    self_queue: VecDeque<Message>,
}

impl NodeContext {
    /// Send a message, short-circuiting messages addressed to this node through the
    /// internal loopback queue (drained at the end of every public handler) so drivers
    /// never have to route loopback traffic.
    pub(crate) fn send(&mut self, to: NodeId, mut msg: Message, out: &mut Vec<Effect>) {
        // Restart-mode snapshot requests advertise this node's membership view, so
        // the resync source can teach it deaths it slept through. Stamped here so
        // every construction site inside the directory service is covered.
        if let Message::DirSnapshotRequest { restart: true, digest, .. } = &mut msg {
            if digest.is_empty() {
                *digest = self.membership.digest();
            }
        }
        if to == self.id {
            self.self_queue.push_back(msg);
        } else {
            self.metrics.messages_sent += 1;
            if matches!(msg, Message::DirReplicate { .. }) {
                // Replication egress: one per backup under star fan-out, one per op
                // under chain replication (scenarios assert the halved fan-out).
                self.metrics.directory_replicates_sent += 1;
            }
            out.push(Effect::Send { to, msg });
        }
    }

    fn dir_send(&mut self, routed: Option<(NodeId, Message)>, out: &mut Vec<Effect>) {
        // `None` means every replica of the shard is dead; the op has nowhere to go
        // and is dropped, exactly as a message to a dead node would be.
        if let Some((to, msg)) = routed {
            self.send(to, msg, out);
        }
    }

    /// Register (or refresh) this node as a location of `object`.
    pub(crate) fn dir_register(
        &mut self,
        object: ObjectId,
        status: ObjectStatus,
        size: u64,
        out: &mut Vec<Effect>,
    ) {
        let routed = self.directory.register(object, status, size);
        self.dir_send(routed, out);
    }

    /// Publish a small object through the directory's inline fast path.
    pub(crate) fn dir_put_inline(
        &mut self,
        object: ObjectId,
        payload: Payload,
        out: &mut Vec<Effect>,
    ) {
        let routed = self.directory.put_inline(object, payload);
        self.dir_send(routed, out);
    }

    /// Withdraw this node's location for `object`.
    pub(crate) fn dir_unregister(&mut self, object: ObjectId, out: &mut Vec<Effect>) {
        let routed = self.directory.unregister(object);
        self.dir_send(routed, out);
    }

    /// Issue a synchronous location query.
    pub(crate) fn dir_query(
        &mut self,
        object: ObjectId,
        query_id: u64,
        exclude: Vec<NodeId>,
        out: &mut Vec<Effect>,
    ) {
        let routed = self.directory.query(object, query_id, exclude);
        self.dir_send(routed, out);
    }

    /// Open a location subscription.
    pub(crate) fn dir_subscribe(&mut self, object: ObjectId, out: &mut Vec<Effect>) {
        let routed = self.directory.subscribe(object);
        self.dir_send(routed, out);
    }

    /// Close a location subscription.
    pub(crate) fn dir_unsubscribe(&mut self, object: ObjectId, out: &mut Vec<Effect>) {
        let routed = self.directory.unsubscribe(object);
        self.dir_send(routed, out);
    }

    /// Report a finished transfer so the sender's lease is released.
    pub(crate) fn dir_transfer_done(
        &mut self,
        object: ObjectId,
        sender: NodeId,
        out: &mut Vec<Effect>,
    ) {
        let routed = self.directory.transfer_done(object, sender);
        self.dir_send(routed, out);
    }

    /// Delete every copy of `object` cluster-wide.
    pub(crate) fn dir_delete(&mut self, object: ObjectId, out: &mut Vec<Effect>) {
        let routed = self.directory.delete(object);
        self.dir_send(routed, out);
    }

    /// A fresh directory-query correlation id.
    pub(crate) fn fresh_query_id(&mut self) -> u64 {
        let id = self.next_query_id;
        self.next_query_id += 1;
        id
    }

    /// A fresh timer token.
    pub(crate) fn fresh_timer(&mut self) -> TimerToken {
        let token = TimerToken(self.next_timer);
        self.next_timer += 1;
        token
    }
}

/// A local-store progress notification routed between engines by the facade: `object`
/// advanced its watermark, and `completed` when it reached its total size.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Progress {
    pub(crate) object: ObjectId,
    pub(crate) completed: bool,
}

impl Progress {
    pub(crate) fn advanced(object: ObjectId) -> Progress {
        Progress { object, completed: false }
    }

    pub(crate) fn completed(object: ObjectId) -> Progress {
        Progress { object, completed: true }
    }
}

/// The Hoplite state machine for one node: the directory service (this node's shard
/// replicas) + broadcast engine + reduce engines behind one dispatch facade.
pub struct ObjectStoreNode {
    ctx: NodeContext,
    directory: DirectoryService,
    broadcast: BroadcastEngine,
    reduce: ReduceEngine,
    /// Outstanding bulk-expiry timer for directory leases / store idle GC. Armed
    /// lazily — only while a hosted shard has lease candidates or the store has
    /// idle-GC work — so a quiet node goes fully quiescent (the simulator runs
    /// until its event queue drains).
    lease_timer: Option<TimerToken>,
    /// The SWIM failure detector, present iff `HopliteConfig::detector` is set.
    /// Pure state machine; this facade translates its actions into wire messages
    /// and feeds verdicts through the membership view.
    detector: Option<FailureDetector>,
    /// Outstanding probe timer for the detector: a single perpetual chain — each
    /// tick re-arms for the detector's next deadline. Armed by
    /// [`ObjectStoreNode::handle_started`] (never on nodes without a detector, so
    /// detector-less sims still go quiescent).
    probe_timer: Option<TimerToken>,
}

impl ObjectStoreNode {
    /// Create a node.
    pub fn new(id: NodeId, cfg: HopliteConfig, cluster: ClusterView, opts: NodeOptions) -> Self {
        let directory = DirectoryService::new(id, &cfg, &cluster.nodes);
        let dir_client = DirectoryClient::new(id, &cfg, &cluster.nodes);
        let store = LocalStore::new(cfg.store_capacity);
        let membership = MembershipView::new(id, cluster.len(), opts.incarnation);
        // Deterministic per (node, incarnation): ring shuffles and relay picks
        // replay identically under the simulator.
        let detector_seed = (u64::from(id.0) << 32) ^ opts.incarnation;
        let detector = cfg
            .detector
            .clone()
            .map(|dc| FailureDetector::new(id, cluster.len(), dc, detector_seed, Time::ZERO));
        ObjectStoreNode {
            ctx: NodeContext {
                id,
                cfg,
                opts,
                store,
                metrics: NodeMetrics::default(),
                directory: dir_client,
                membership,
                next_query_id: 1,
                next_timer: 1,
                self_queue: VecDeque::new(),
            },
            directory,
            broadcast: BroadcastEngine::default(),
            reduce: ReduceEngine::default(),
            lease_timer: None,
            detector,
            probe_timer: None,
        }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.ctx.id
    }

    /// Configuration in effect.
    pub fn config(&self) -> &HopliteConfig {
        &self.ctx.cfg
    }

    /// Metrics counters.
    pub fn metrics(&self) -> &NodeMetrics {
        &self.ctx.metrics
    }

    /// Read-only access to the local store (tests and drivers).
    pub fn store(&self) -> &LocalStore {
        &self.ctx.store
    }

    /// Whether this node currently holds a complete copy of `object`.
    pub fn has_complete(&self, object: ObjectId) -> bool {
        self.ctx.store.is_complete(object)
    }

    /// The node this node currently believes is the primary of `object`'s directory
    /// shard (`None` once every replica of the shard has failed).
    pub fn directory_primary_for(&self, object: ObjectId) -> Option<NodeId> {
        self.directory.primary_for(object)
    }

    /// Whether this node currently acts as the primary for `object`'s shard.
    pub fn is_directory_primary_for(&self, object: ObjectId) -> bool {
        self.directory.is_primary_for(object)
    }

    /// Object locations recorded in this node's replica of `object`'s shard; `None`
    /// when this node hosts no replica of that shard. Failover tests use this to
    /// assert that no location record was lost with a primary.
    pub fn directory_locations(&self, object: ObjectId) -> Option<Vec<(NodeId, ObjectStatus)>> {
        self.directory.locations(object)
    }

    /// `true` when every reduce-related map on this node is empty (participants,
    /// coordinators, routing tables, parked early blocks). Reduce-state GC tests
    /// assert this after completion.
    pub fn reduce_state_is_empty(&self) -> bool {
        self.reduce.is_idle()
    }

    /// Number of directory subscriptions this node currently holds open.
    pub fn directory_subscription_count(&self) -> usize {
        self.ctx.directory.subscription_count()
    }

    /// Whether this node is still resyncing its directory replicas after a restart.
    pub fn directory_is_resyncing(&self) -> bool {
        self.directory.is_resyncing()
    }

    /// This process's incarnation number (0 on cold boot, bumped per restart).
    pub fn incarnation(&self) -> u64 {
        self.ctx.membership.self_incarnation()
    }

    /// Read access to the incarnation-numbered membership view.
    pub fn membership(&self) -> &MembershipView {
        &self.ctx.membership
    }

    /// Journaled directory intents not yet confirmed as replication-durable — the
    /// window a failover would re-drive.
    pub fn directory_unconfirmed_count(&self) -> usize {
        self.ctx.directory.unconfirmed_count()
    }

    // ------------------------------------------------------------------ client ops --

    /// Submit a client operation.
    pub fn handle_client(&mut self, now: Time, op_id: OpId, op: ClientOp, out: &mut Vec<Effect>) {
        match op {
            ClientOp::Put { object, payload } => {
                let progress =
                    self.broadcast.client_put(&mut self.ctx, now, op_id, object, payload, out);
                self.route_progress(now, progress, out);
            }
            ClientOp::Get { object } => {
                self.broadcast.client_get(&mut self.ctx, now, op_id, object, out);
            }
            ClientOp::Reduce { target, sources, num_objects, spec, degree } => {
                self.reduce.client_reduce(
                    &mut self.ctx,
                    op_id,
                    target,
                    sources,
                    num_objects,
                    spec,
                    degree,
                    out,
                );
            }
            ClientOp::Delete { object } => {
                self.ctx.dir_delete(object, out);
                out.push(Effect::Reply {
                    op: op_id,
                    reply: crate::protocol::ClientReply::DeleteDone { object },
                });
            }
        }
        self.drain_self_queue(now, out);
        self.finish_turn(out);
    }

    /// Deliver a protocol message from `from`.
    pub fn handle_message(&mut self, now: Time, from: NodeId, msg: Message, out: &mut Vec<Effect>) {
        self.dispatch_message(now, from, msg, out);
        self.drain_self_queue(now, out);
        self.finish_turn(out);
    }

    /// Driver signal that this node's event loop is live (cold boot or restart):
    /// arms the failure detector's probe timer, if one is configured. Idempotent —
    /// the single probe-timer chain is never double-armed.
    pub fn handle_started(&mut self, now: Time, out: &mut Vec<Effect>) {
        self.arm_detector_timer(now, out);
        self.drain_self_queue(now, out);
        self.finish_turn(out);
    }

    /// A timer armed via [`Effect::SetTimer`] fired.
    pub fn handle_timer(&mut self, now: Time, token: TimerToken, out: &mut Vec<Effect>) {
        if self.lease_timer == Some(token) {
            self.lease_timer = None;
            self.expiry_tick(out);
        } else if self.probe_timer == Some(token) {
            self.probe_timer = None;
            self.detector_tick(now, out);
        } else if let Some(object) = self.broadcast.take_put_timer(token) {
            let progress = self.broadcast.advance_pipelined_put(&mut self.ctx, now, object, out);
            self.route_progress(now, progress, out);
        }
        self.drain_self_queue(now, out);
        self.finish_turn(out);
    }

    /// A peer node failed (detected by the driver: socket liveness in real deployments,
    /// an explicit event in the simulator). The event carries no incarnation, so it
    /// applies to the highest incarnation this node knows; duplicates are absorbed by
    /// the membership view. See [`failure`] for the adaptation rules.
    pub fn handle_peer_failed(&mut self, now: Time, peer: NodeId, out: &mut Vec<Effect>) {
        if self.ctx.membership.note_driver_failure(peer) == FailureVerdict::Apply {
            self.peer_failed_impl(now, peer, out);
        }
        let incarnation = self.ctx.membership.incarnation_of(peer);
        self.detector_observe_dead(peer, incarnation);
        self.drain_self_queue(now, out);
        self.finish_turn(out);
    }

    /// A previously-failed peer came back. It is folded into the placement views as
    /// *resyncing*: alive (log shipments resume to it) but not a primary candidate
    /// until it announces catch-up with [`Message::DirResynced`]. The restarted node
    /// itself drives the state transfer — see [`ObjectStoreNode::begin_recovery`].
    pub fn handle_peer_recovered(&mut self, _now: Time, peer: NodeId, out: &mut Vec<Effect>) {
        if peer == self.ctx.id {
            return;
        }
        // Bump the peer's incarnation if this is the first recovery evidence —
        // mirroring the `+1` the restarting side assigns itself — so stale failure
        // notices about the dead incarnation are dropped from here on. The
        // placement updates below stay unconditional: they are idempotent, and the
        // peer may already have been folded in via its own snapshot request.
        self.ctx.membership.note_driver_recovery(peer);
        let incarnation = self.ctx.membership.incarnation_of(peer);
        self.detector_observe_alive(peer, incarnation);
        self.directory.on_peer_recovered(peer);
        self.ctx.directory.on_peer_recovered(peer);
        let _ = out;
    }

    // ------------------------------------------------------------------ dispatch --

    fn dispatch_message(&mut self, now: Time, from: NodeId, msg: Message, out: &mut Vec<Effect>) {
        match msg {
            // Directory plane: this node hosts a replica of the shard responsible for
            // the object (or forwards to the node it believes does).
            Message::DirRegister { object, holder, status, size } => {
                self.apply_dir_op(DirOp::Register { object, holder, status, size }, out);
            }
            Message::DirPutInline { object, holder, payload } => {
                self.apply_dir_op(DirOp::PutInline { object, holder, payload }, out);
            }
            Message::DirUnregister { object, holder } => {
                self.apply_dir_op(DirOp::Unregister { object, holder }, out);
            }
            Message::DirQuery { object, requester, query_id, exclude } => {
                self.apply_dir_op(DirOp::Query { object, requester, query_id, exclude }, out);
            }
            Message::DirSubscribe { object, subscriber } => {
                self.apply_dir_op(DirOp::Subscribe { object, subscriber }, out);
            }
            Message::DirUnsubscribe { object, subscriber } => {
                self.apply_dir_op(DirOp::Unsubscribe { object, subscriber }, out);
            }
            Message::DirTransferDone { object, receiver, sender } => {
                self.apply_dir_op(DirOp::TransferDone { object, receiver, sender }, out);
            }
            Message::DirDelete { object } => {
                self.apply_dir_op(DirOp::Delete { object }, out);
            }
            Message::DirReplicate { shard, epoch, seq, op } => {
                let mut replies = Vec::new();
                self.directory.handle_replicate(
                    shard as usize,
                    epoch,
                    seq,
                    &op,
                    from,
                    &mut replies,
                );
                for (to, msg) in replies {
                    self.ctx.send(to, msg, out);
                }
            }
            Message::DirAck { shard, epoch, seq } => {
                let mut confirms = Vec::new();
                self.directory.handle_ack(shard as usize, from, epoch, seq, &mut confirms);
                self.ctx.metrics.chain_ack_depth += self.directory.take_chain_ack_relays();
                for (to, msg) in confirms {
                    self.ctx.send(to, msg, out);
                }
            }
            Message::DirSnapshotRequest {
                shard,
                requester,
                restart,
                after,
                have_epoch,
                have_seq,
                digest,
            } => {
                // A snapshot request is implicit evidence about the requester: it is
                // back up, and — when it marks a restart — that it crashed, even if
                // the failure detector has not reported either yet. The implied
                // failure re-drives the unconfirmed window like a detected one.
                if restart {
                    let redrive = self.ctx.directory.on_peer_restarted(requester);
                    self.apply_directory_redrive(now, redrive, out);
                } else {
                    self.ctx.directory.on_peer_recovered(requester);
                }
                if !digest.is_empty() {
                    // Learn the requester's incarnation (and anything else it knows
                    // that we do not — nothing, for a fresh restart), then teach it
                    // every entry we know strictly newer: the deaths it slept
                    // through. After the first round both views converge and the
                    // reply is skipped.
                    self.ctx.membership.merge_digest(&digest);
                    let newer = self.ctx.membership.newer_than(&digest);
                    if !newer.is_empty() {
                        trace!(
                            "[n{}] teaching restarted {:?} {} membership entries",
                            self.ctx.id.0,
                            requester,
                            newer.len()
                        );
                        self.ctx.send(requester, Message::MembershipDigest { entries: newer }, out);
                    }
                }
                let mut replies = Vec::new();
                self.directory.handle_snapshot_request(
                    shard as usize,
                    requester,
                    restart,
                    after,
                    have_epoch,
                    have_seq,
                    &mut replies,
                );
                for (to, msg) in replies {
                    self.ctx.send(to, msg, out);
                }
            }
            Message::DirSnapshot { shard, epoch, seq, rank, state } => {
                self.handle_dir_snapshot(
                    now,
                    shard as usize,
                    epoch,
                    seq,
                    rank as usize,
                    &state,
                    from,
                    out,
                );
            }
            Message::DirSnapshotChunk { shard, epoch, seq, rank, done, state } => {
                self.handle_dir_snapshot_chunk(
                    now,
                    shard as usize,
                    epoch,
                    seq,
                    rank as usize,
                    done,
                    &state,
                    from,
                    out,
                );
            }
            Message::DirResyncDelta { shard, epoch, ops, done } => {
                self.handle_dir_resync_delta(now, shard as usize, epoch, &ops, done, from, out);
            }
            Message::DirResynced { node, incarnation } => {
                match self.ctx.membership.note_alive(node, incarnation) {
                    AliveVerdict::Stale => {
                        // A late announcement from an incarnation that has already
                        // died (or older): re-admitting it would hand shards to a
                        // dead process.
                        trace!(
                            "[n{}] dropped stale DirResynced from {:?} inc {}",
                            self.ctx.id.0,
                            node,
                            incarnation
                        );
                        self.ctx.metrics.stale_failure_notices_dropped += 1;
                        return;
                    }
                    AliveVerdict::Superseded { was_alive } => {
                        // First liveness evidence for this incarnation: fold the
                        // recovery in (and the crash we slept through, if we still
                        // believed the previous incarnation healthy) before the
                        // re-admission below.
                        if was_alive {
                            self.peer_failed_impl(now, node, out);
                        }
                        self.directory.on_peer_recovered(node);
                        self.ctx.directory.on_peer_recovered(node);
                    }
                    AliveVerdict::Known => {}
                }
                self.detector_observe_alive(node, incarnation);
                trace!("[n{}] peer {:?} re-admitted to its replica sets", self.ctx.id.0, node);
                // Under chain replication the re-admission re-splices the peer into
                // its chains: the service may emit suffix re-shipments and
                // re-anchoring acks here.
                let mut replies = Vec::new();
                self.directory.on_peer_readmitted(node, &mut replies);
                for (to, msg) in replies {
                    self.ctx.send(to, msg, out);
                }
                // A shard that was leaderless while the peer was out regains its
                // primary with this re-admission: re-drive the unconfirmed window
                // there just as after a failover.
                let redrive = self.ctx.directory.on_peer_readmitted(node);
                self.apply_directory_redrive(now, redrive, out);
            }
            Message::DirConfirm { object, kind } => {
                self.ctx.directory.confirm(object, kind);
            }
            // Directory replies and publications addressed to this node.
            Message::DirQueryReply { object, query_id, result } => {
                let progress = self.broadcast.handle_query_reply(
                    &mut self.ctx,
                    now,
                    object,
                    query_id,
                    result,
                    out,
                );
                self.route_progress(now, progress, out);
            }
            Message::DirPublish { object, holder, status: _, size } => {
                self.reduce.on_dir_publish(&mut self.ctx, object, holder, size, out);
            }
            Message::StoreRelease { object } => {
                self.broadcast.handle_store_release(&mut self.ctx, object, out);
            }
            // Data plane.
            Message::PullRequest { object, requester, offset } => {
                self.broadcast.handle_pull_request(&mut self.ctx, object, requester, offset, out);
            }
            Message::PullCancel { object, requester } => {
                self.broadcast.cancel_pull(object, requester);
            }
            Message::PushBlock { object, offset, total_size, payload, complete: _ } => {
                let progress = self.broadcast.handle_push_block(
                    &mut self.ctx,
                    from,
                    object,
                    offset,
                    total_size,
                    payload,
                    out,
                );
                self.route_progress(now, progress, out);
            }
            Message::PullError { object, reason: _ } => {
                self.broadcast.on_pull_error(&mut self.ctx, now, from, object, out);
            }
            // Reduce plane.
            Message::ReduceInstruction(instr) => {
                let events = self.reduce.on_instruction(&mut self.ctx, instr, out);
                self.route_reduce_events(now, events, out);
            }
            Message::ReduceBlock {
                target,
                to_slot,
                from_slot,
                parent_epoch,
                block_index,
                object_size,
                payload,
            } => {
                let events = self.reduce.on_block(
                    &mut self.ctx,
                    target,
                    to_slot,
                    from_slot,
                    parent_epoch,
                    block_index,
                    object_size,
                    payload,
                    out,
                );
                self.route_reduce_events(now, events, out);
            }
            Message::ReduceDone { target, root: _ } => {
                self.reduce.on_reduce_done(&mut self.ctx, target, out);
            }
            Message::ReduceRelease { target } => {
                self.reduce.on_release(target);
            }
            // Membership plane.
            Message::PeerFailureNotice { node, incarnation } => {
                match self.ctx.membership.note_failure(node, incarnation) {
                    FailureVerdict::Apply => {
                        trace!(
                            "[n{}] failure notice: {:?} inc {} is dead",
                            self.ctx.id.0,
                            node,
                            incarnation
                        );
                        self.detector_observe_dead(node, incarnation);
                        self.peer_failed_impl(now, node, out);
                    }
                    FailureVerdict::AlreadyDead => {
                        self.detector_observe_dead(node, incarnation);
                    }
                    FailureVerdict::Stale => {
                        trace!(
                            "[n{}] dropped stale failure notice for {:?} inc {} (know inc {})",
                            self.ctx.id.0,
                            node,
                            incarnation,
                            self.ctx.membership.incarnation_of(node)
                        );
                        self.ctx.metrics.stale_failure_notices_dropped += 1;
                    }
                }
            }
            Message::MembershipDigest { entries } => {
                for &(node, incarnation, alive) in &entries {
                    if alive {
                        self.detector_observe_alive(node, incarnation);
                    } else {
                        self.detector_observe_dead(node, incarnation);
                    }
                }
                let outcome = self.ctx.membership.merge_digest(&entries);
                for peer in outcome.new_deaths {
                    trace!(
                        "[n{}] learned from digest that {:?} died while this node was down",
                        self.ctx.id.0,
                        peer
                    );
                    self.ctx.metrics.membership_deaths_learned += 1;
                    self.peer_failed_impl(now, peer, out);
                }
                for peer in outcome.revived {
                    self.directory.on_peer_recovered(peer);
                    self.ctx.directory.on_peer_recovered(peer);
                }
            }
            // Transport-level peer identification: consumed by connection readers to
            // tag the connection, and forwarded here as liveness evidence. A
            // reconnecting restarted peer's Hello may be the first sign of both its
            // crash and its recovery.
            Message::Hello { node, incarnation } => {
                if let AliveVerdict::Superseded { was_alive } =
                    self.ctx.membership.note_alive(node, incarnation)
                {
                    if was_alive {
                        self.peer_failed_impl(now, node, out);
                    }
                    self.directory.on_peer_recovered(node);
                    self.ctx.directory.on_peer_recovered(node);
                }
                self.detector_observe_alive(node, incarnation);
            }
            // SWIM failure-detector plane ([`crate::detector`]). Every frame
            // carries piggybacked gossip; pings are always answered (to the
            // original prober, carried as `origin` so relays stay stateless),
            // even by nodes whose own detector is disabled.
            Message::Ping { origin, probe_id, gossip } => {
                self.process_gossip(now, &gossip, out);
                let reply_gossip = match self.detector.take() {
                    Some(mut det) => {
                        let self_inc = self.ctx.membership.self_incarnation();
                        let g = det.piggyback(origin, self_inc);
                        self.ctx.metrics.gossip_entries_piggybacked += g.len() as u64;
                        self.detector = Some(det);
                        g
                    }
                    None => Vec::new(),
                };
                self.ctx.send(origin, Message::Ack { probe_id, gossip: reply_gossip }, out);
            }
            Message::Ack { probe_id, gossip } => {
                self.process_gossip(now, &gossip, out);
                if let Some(det) = self.detector.as_mut() {
                    det.on_ack(probe_id);
                }
            }
            Message::PingReq { target, probe_id, gossip } => {
                self.process_gossip(now, &gossip, out);
                // Forward a probe on the requester's behalf; the target acks the
                // requester (`from`) directly, so this relay keeps no state.
                if let Some(mut det) = self.detector.take() {
                    let self_inc = self.ctx.membership.self_incarnation();
                    let g = det.piggyback(target, self_inc);
                    self.ctx.metrics.probes_sent += 1;
                    self.ctx.metrics.gossip_entries_piggybacked += g.len() as u64;
                    self.detector = Some(det);
                    self.ctx.send(target, Message::Ping { origin: from, probe_id, gossip: g }, out);
                }
            }
        }
    }

    /// Route one directory op into this node's service layer and forward whatever it
    /// produced: query replies and publications when we applied as primary, log
    /// shipments to backups, or the forwarded op when the primary is elsewhere.
    fn apply_dir_op(&mut self, op: DirOp, out: &mut Vec<Effect>) {
        let is_query = matches!(op, DirOp::Query { .. });
        let is_registration = matches!(op, DirOp::Register { .. } | DirOp::PutInline { .. });
        let mut replies = Vec::new();
        if self.directory.handle_op(op, &mut replies) {
            if is_query {
                self.ctx.metrics.directory_queries_served += 1;
            } else if is_registration {
                self.ctx.metrics.directory_registrations += 1;
            }
        }
        for (to, msg) in replies {
            self.ctx.send(to, msg, out);
        }
    }

    // ----------------------------------------------------------- progress routing --

    /// Route local-store progress between engines until quiescent: forwarding chained
    /// broadcast receivers, completing parked `Get`s, and feeding reduce participants
    /// whose own input advanced. A reduce root materializing its result produces more
    /// progress, so this loops until no engine has follow-up work.
    pub(crate) fn route_progress(
        &mut self,
        now: Time,
        progress: Vec<Progress>,
        out: &mut Vec<Effect>,
    ) {
        let mut queue: VecDeque<Progress> = progress.into();
        while let Some(p) = queue.pop_front() {
            if p.completed {
                self.broadcast.on_object_complete(&mut self.ctx, p.object, out);
            } else {
                self.broadcast.pump_outgoing(&mut self.ctx, p.object, out);
            }
            let events = self.reduce.pump_for(&mut self.ctx, p.object, out);
            self.enqueue_reduce_events(events, &mut queue, out);
        }
        let _ = now;
    }

    /// Route reduce-engine events produced outside the progress loop.
    pub(crate) fn route_reduce_events(
        &mut self,
        now: Time,
        events: Vec<ReduceEvent>,
        out: &mut Vec<Effect>,
    ) {
        let mut queue = VecDeque::new();
        self.enqueue_reduce_events(events, &mut queue, out);
        self.route_progress(now, queue.into_iter().collect(), out);
    }

    fn enqueue_reduce_events(
        &mut self,
        events: Vec<ReduceEvent>,
        queue: &mut VecDeque<Progress>,
        out: &mut Vec<Effect>,
    ) {
        for event in events {
            match event {
                ReduceEvent::Progress { object, completed } => {
                    queue.push_back(Progress { object, completed });
                }
                ReduceEvent::Invalidate { object } => {
                    // A reduce root cleared a partially-materialized result (§3.5.2):
                    // abort anyone pulling it so they restart against fresh data.
                    self.broadcast.abort_outgoing(
                        &mut self.ctx,
                        object,
                        "reduce result reset",
                        out,
                    );
                }
            }
        }
    }

    // ------------------------------------------------------------ turn epilogue --

    /// End-of-handler bookkeeping: fold the directory plane's drained counters into
    /// the metrics block, refresh the store gauge, and lazily (re-)arm the bulk
    /// expiry timer while there is expiry work to do.
    fn finish_turn(&mut self, out: &mut Vec<Effect>) {
        let (chunks, bytes, deltas) = self.directory.take_resync_counters();
        self.ctx.metrics.snapshot_chunks_sent += chunks;
        self.ctx.metrics.snapshot_bytes += bytes;
        self.ctx.metrics.delta_resyncs += deltas;
        self.ctx.metrics.inline_evictions += self.directory.take_inline_evictions();
        self.ctx.metrics.store_bytes_live = self.ctx.store.used();
        self.maybe_arm_expiry_timer(out);
    }

    /// Arm the shared lease-expiry / store-GC timer if it is not already pending and
    /// either expiry wheel might hold work. A node with no lease candidates and no
    /// idle store copies arms nothing and goes quiescent.
    fn maybe_arm_expiry_timer(&mut self, out: &mut Vec<Effect>) {
        if self.lease_timer.is_some() {
            return;
        }
        let mut delay = None;
        if self.directory.has_lease_candidates() {
            delay = Some(self.ctx.cfg.directory_lease_ttl);
        }
        if let Some(ttl) = self.ctx.cfg.store_gc_ttl {
            if self.ctx.store.has_idle_candidates() {
                delay = Some(delay.map_or(ttl, |d| d.min(ttl)));
            }
        }
        if let Some(delay) = delay {
            let token = self.ctx.fresh_timer();
            self.lease_timer = Some(token);
            out.push(Effect::SetTimer { token, delay });
        }
    }

    /// One bulk expiry tick: reclaim stale directory leases across every hosted
    /// shard (two-generation lazy wheel — a lease must survive a full generation
    /// before it is considered stale) and, when store GC is enabled, drop store
    /// copies that sat unpinned and untouched for two full generations, withdrawing
    /// their directory registrations.
    fn expiry_tick(&mut self, out: &mut Vec<Effect>) {
        let mut msgs = Vec::new();
        self.ctx.metrics.leases_expired += self.directory.expire_leases(&mut msgs);
        for (to, msg) in msgs {
            self.ctx.send(to, msg, out);
        }
        if self.ctx.cfg.store_gc_ttl.is_some() {
            for object in self.ctx.store.sweep_idle() {
                trace!("[n{}] store GC dropped idle copy of {:?}", self.ctx.id.0, object);
                self.ctx.dir_unregister(object, out);
            }
        }
    }

    // --------------------------------------------------------- failure detector --

    /// (Re-)arm the detector's probe timer for its next deadline. No-op without a
    /// detector or while the chain is already armed.
    fn arm_detector_timer(&mut self, now: Time, out: &mut Vec<Effect>) {
        let Some(det) = &self.detector else { return };
        if self.probe_timer.is_some() {
            return;
        }
        // Floor of 1ms so a deadline that just passed cannot spin a zero-delay
        // timer loop; the detector's periods are orders of magnitude larger.
        let delay = det.next_wake(now).duration_since(now).max(Duration::from_millis(1));
        let token = self.ctx.fresh_timer();
        self.probe_timer = Some(token);
        out.push(Effect::SetTimer { token, delay });
    }

    /// One detector wake-up: advance the state machine, turn its actions into
    /// probes / suspicion bookkeeping / death verdicts, and re-arm the chain.
    fn detector_tick(&mut self, now: Time, out: &mut Vec<Effect>) {
        let Some(mut det) = self.detector.take() else { return };
        let mut actions = Vec::new();
        det.tick(now, &mut actions);
        let self_inc = self.ctx.membership.self_incarnation();
        for action in actions {
            match action {
                DetectorAction::Ping { to, probe_id } => {
                    let gossip = det.piggyback(to, self_inc);
                    self.ctx.metrics.probes_sent += 1;
                    self.ctx.metrics.gossip_entries_piggybacked += gossip.len() as u64;
                    let origin = self.ctx.id;
                    self.ctx.send(to, Message::Ping { origin, probe_id, gossip }, out);
                }
                DetectorAction::PingReq { relay, target, probe_id } => {
                    let gossip = det.piggyback(relay, self_inc);
                    self.ctx.metrics.indirect_probes += 1;
                    self.ctx.metrics.gossip_entries_piggybacked += gossip.len() as u64;
                    self.ctx.send(relay, Message::PingReq { target, probe_id, gossip }, out);
                }
                DetectorAction::Suspect { node, incarnation } => {
                    trace!(
                        "[n{}] detector suspects {:?} inc {} (no ack, direct or relayed)",
                        self.ctx.id.0,
                        node,
                        incarnation
                    );
                    self.ctx.metrics.suspicions_raised += 1;
                }
                DetectorAction::Dead { node, incarnation } => {
                    trace!(
                        "[n{}] detector declares {:?} inc {} dead (suspicion expired)",
                        self.ctx.id.0,
                        node,
                        incarnation
                    );
                    self.ctx.metrics.deaths_declared += 1;
                    if self.ctx.membership.note_failure(node, incarnation) == FailureVerdict::Apply
                    {
                        self.peer_failed_impl(now, node, out);
                    }
                }
            }
        }
        self.detector = Some(det);
        self.arm_detector_timer(now, out);
    }

    /// Fold the piggybacked gossip of an incoming Ping/Ack/PingReq into the
    /// membership view and the detector's dissemination state. Claims about this
    /// node itself are where refutation happens: a Suspect/Dead claim naming our
    /// current (or a newer) incarnation makes us bump past it — the refuted alive
    /// claim then leads every digest we send from here on.
    fn process_gossip(&mut self, now: Time, entries: &[GossipEntry], out: &mut Vec<Effect>) {
        let Some(mut det) = self.detector.take() else { return };
        for &(node, incarnation, state) in entries {
            if node == self.ctx.id {
                if state != GossipState::Alive
                    && incarnation >= self.ctx.membership.self_incarnation()
                {
                    let new_inc = self.ctx.membership.refute(incarnation);
                    self.ctx.metrics.refutations_sent += 1;
                    trace!(
                        "[n{}] refuting gossiped {:?} claim about self: bumped to inc {}",
                        self.ctx.id.0,
                        state,
                        new_inc
                    );
                }
                continue;
            }
            match state {
                GossipState::Alive => match self.ctx.membership.note_alive(node, incarnation) {
                    AliveVerdict::Superseded { was_alive } => {
                        // A newer incarnation is alive. If we believed the old one
                        // alive this is a *refutation* — the node never died, so
                        // unlike a reconnecting `Hello` no implied failure is
                        // folded. If we believed it dead, it restarted: fold the
                        // recovery into the placement views.
                        if !was_alive {
                            self.directory.on_peer_recovered(node);
                            self.ctx.directory.on_peer_recovered(node);
                        }
                        det.observe_alive(node, incarnation);
                    }
                    AliveVerdict::Known => {
                        det.observe_alive(node, incarnation);
                    }
                    AliveVerdict::Stale => {}
                },
                GossipState::Suspect => {
                    if det.observe_suspect(node, incarnation, now) {
                        trace!(
                            "[n{}] adopted gossiped suspicion of {:?} inc {}",
                            self.ctx.id.0,
                            node,
                            incarnation
                        );
                        self.ctx.metrics.suspicions_raised += 1;
                    }
                }
                GossipState::Dead => {
                    det.observe_dead(node, incarnation);
                    if self.ctx.membership.note_failure(node, incarnation) == FailureVerdict::Apply
                    {
                        trace!(
                            "[n{}] learned from gossip that {:?} inc {} died",
                            self.ctx.id.0,
                            node,
                            incarnation
                        );
                        self.ctx.metrics.membership_deaths_learned += 1;
                        self.peer_failed_impl(now, node, out);
                    }
                }
            }
        }
        self.detector = Some(det);
    }

    /// Keep the detector's per-peer mirror in step with liveness evidence that
    /// arrived outside the gossip plane (Hello, DirResynced, digests, driver
    /// verdicts). No-op without a detector.
    pub(crate) fn detector_observe_alive(&mut self, node: NodeId, incarnation: u64) {
        if let Some(det) = self.detector.as_mut() {
            det.observe_alive(node, incarnation);
        }
    }

    /// As [`ObjectStoreNode::detector_observe_alive`], for death evidence.
    pub(crate) fn detector_observe_dead(&mut self, node: NodeId, incarnation: u64) {
        if let Some(det) = self.detector.as_mut() {
            det.observe_dead(node, incarnation);
        }
    }

    fn drain_self_queue(&mut self, now: Time, out: &mut Vec<Effect>) {
        // Bounded by a generous limit to surface accidental ping-pong loops in tests
        // instead of hanging.
        let mut budget = 100_000;
        while let Some(msg) = self.ctx.self_queue.pop_front() {
            let me = self.ctx.id;
            self.dispatch_message(now, me, msg, out);
            budget -= 1;
            if budget == 0 {
                panic!("self-message loop did not terminate");
            }
        }
    }
}
