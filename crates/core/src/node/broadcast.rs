//! The receiver-driven broadcast engine (§3.4.1) and the pipelined object ingest path
//! (§3.3).
//!
//! The engine owns every piece of per-node broadcast state:
//!
//! * in-progress local `Get`s and their outstanding directory queries;
//! * outgoing block transfers this node is serving to remote receivers (which is what
//!   turns receivers into senders and makes broadcast receiver-driven);
//! * pipelined `Put`s being copied block-by-block from the worker into the store.
//!
//! It emits [`Effect`]s through the shared [`NodeContext`] and reports local-store
//! progress back to the facade as [`Progress`] values, which the facade routes to the
//! reduce engine (an advancing object may be a reduce input) and back here (an
//! advancing object may have chained receivers).

use std::collections::HashMap;

use crate::buffer::Payload;
use crate::error::HopliteError;
use crate::object::{NodeId, ObjectId, ObjectStatus};
use crate::protocol::{ClientReply, Effect, Message, OpId, QueryResult, TimerToken};
use crate::time::Time;

use super::{trace, NodeContext, Progress};

/// State of one in-progress `Get` (broadcast receive) on this node.
#[derive(Debug, Default)]
pub(crate) struct GetState {
    /// Local client operations waiting for the object.
    pub(crate) waiting_ops: Vec<OpId>,
    /// The sender we are currently pulling from, if any.
    pub(crate) pulling_from: Option<NodeId>,
    /// Senders we must not be pointed back at (observed failures).
    pub(crate) excluded: Vec<NodeId>,
    /// Outstanding directory query id, if any.
    pub(crate) query_id: Option<u64>,
}

/// One transfer we are serving to a remote receiver.
#[derive(Debug, Clone, PartialEq, Eq)]
struct OutgoingTransfer {
    to: NodeId,
    next_offset: u64,
}

/// The broadcast + ingest engine. All maps are keyed by object.
#[derive(Default)]
pub(crate) struct BroadcastEngine {
    /// In-progress local `Get`s.
    pub(crate) gets: HashMap<ObjectId, GetState>,
    /// Map from outstanding query id to object (to validate replies).
    queries: HashMap<u64, ObjectId>,
    /// Transfers we are serving.
    outgoing: HashMap<ObjectId, Vec<OutgoingTransfer>>,
    /// Pipelined `Put`s in progress: object -> (payload, next offset, op).
    pending_puts: HashMap<ObjectId, (Payload, u64, OpId)>,
    /// Timer token -> pipelined put object.
    put_timers: HashMap<TimerToken, ObjectId>,
}

impl BroadcastEngine {
    // ------------------------------------------------------------------------ put --

    /// Store an object locally and publish its location. Returns the progress events
    /// the facade must route (an instantaneous put completes immediately).
    pub(crate) fn client_put(
        &mut self,
        ctx: &mut NodeContext,
        now: Time,
        op_id: OpId,
        object: ObjectId,
        payload: Payload,
        out: &mut Vec<Effect>,
    ) -> Vec<Progress> {
        let size = payload.len();
        if ctx.store.contains(object) {
            out.push(Effect::Reply {
                op: op_id,
                reply: ClientReply::Error { error: HopliteError::ObjectAlreadyExists(object) },
            });
            return Vec::new();
        }
        ctx.metrics.objects_put += 1;
        // Small objects take the directory fast path (§3.2): cache the whole object in
        // the directory shard; there is no block pipeline to run.
        if ctx.cfg.is_inline(size) {
            if let Err(error) = ctx.store.put_complete(object, payload.clone(), true) {
                out.push(Effect::Reply { op: op_id, reply: ClientReply::Error { error } });
                return Vec::new();
            }
            ctx.dir_put_inline(object, payload, out);
            out.push(Effect::Reply { op: op_id, reply: ClientReply::PutDone { object } });
            return Vec::new();
        }
        if ctx.opts.pipelined_put && size > ctx.cfg.block_size {
            // Model the worker→store memcpy as a timed, block-granular copy so that the
            // network transfer can overlap with it (§3.3). The object is registered as
            // a partial location immediately.
            if let Err(error) = ctx.store.begin_receive(object, size, payload.is_synthetic()) {
                out.push(Effect::Reply { op: op_id, reply: ClientReply::Error { error } });
                return Vec::new();
            }
            ctx.store.set_pinned(object, true);
            ctx.dir_register(object, ObjectStatus::Partial, size, out);
            self.pending_puts.insert(object, (payload, 0, op_id));
            self.schedule_put_step(ctx, now, object, out);
            Vec::new()
        } else {
            if let Err(error) = ctx.store.put_complete(object, payload, true) {
                out.push(Effect::Reply { op: op_id, reply: ClientReply::Error { error } });
                return Vec::new();
            }
            ctx.dir_register(object, ObjectStatus::Complete, size, out);
            out.push(Effect::Reply { op: op_id, reply: ClientReply::PutDone { object } });
            vec![Progress::completed(object)]
        }
    }

    fn schedule_put_step(
        &mut self,
        ctx: &mut NodeContext,
        _now: Time,
        object: ObjectId,
        out: &mut Vec<Effect>,
    ) {
        let token = ctx.fresh_timer();
        self.put_timers.insert(token, object);
        let step = (ctx.cfg.block_size as f64 / ctx.cfg.memcpy_bandwidth).max(0.0);
        out.push(Effect::SetTimer { token, delay: crate::time::Duration::from_secs_f64(step) });
    }

    /// Claim a fired timer token if it belongs to a pipelined put.
    pub(crate) fn take_put_timer(&mut self, token: TimerToken) -> Option<ObjectId> {
        self.put_timers.remove(&token)
    }

    /// Copy the next block of a pipelined put into the store.
    pub(crate) fn advance_pipelined_put(
        &mut self,
        ctx: &mut NodeContext,
        now: Time,
        object: ObjectId,
        out: &mut Vec<Effect>,
    ) -> Vec<Progress> {
        let Some((payload, offset, op_id)) = self.pending_puts.remove(&object) else {
            return Vec::new();
        };
        let total = payload.len();
        let len = ctx.cfg.block_size.min(total - offset);
        let block = payload.slice(offset, len);
        if ctx.store.append(object, offset, &block).is_err() {
            // The object was deleted mid-copy; drop the put.
            out.push(Effect::Reply {
                op: op_id,
                reply: ClientReply::Error { error: HopliteError::ObjectDeleted(object) },
            });
            return Vec::new();
        }
        let new_offset = offset + len;
        if new_offset >= total {
            out.push(Effect::Reply { op: op_id, reply: ClientReply::PutDone { object } });
            vec![Progress::completed(object)]
        } else {
            self.pending_puts.insert(object, (payload, new_offset, op_id));
            out.push(Effect::LocalProgress { object, watermark: new_offset, total_size: total });
            self.schedule_put_step(ctx, now, object, out);
            vec![Progress::advanced(object)]
        }
    }

    // ------------------------------------------------------------------------ get --

    /// Fetch an object: serve locally if complete, otherwise park the op and start the
    /// receiver-driven pull.
    pub(crate) fn client_get(
        &mut self,
        ctx: &mut NodeContext,
        now: Time,
        op_id: OpId,
        object: ObjectId,
        out: &mut Vec<Effect>,
    ) {
        trace!("[n{}] client_get {:?}", ctx.id.0, object);
        if let Some(payload) = ctx.store.get_complete(object) {
            ctx.metrics.gets_completed += 1;
            out.push(Effect::Reply { op: op_id, reply: ClientReply::GetDone { object, payload } });
            return;
        }
        let already_tracking = self.gets.contains_key(&object) || ctx.store.contains(object);
        let entry = self.gets.entry(object).or_default();
        entry.waiting_ops.push(op_id);
        if already_tracking {
            // Either a pull is already in flight, or the object is being created
            // locally (pipelined put / reduce root); the reply happens on completion.
            return;
        }
        self.issue_directory_query(ctx, now, object, out);
    }

    pub(crate) fn issue_directory_query(
        &mut self,
        ctx: &mut NodeContext,
        _now: Time,
        object: ObjectId,
        out: &mut Vec<Effect>,
    ) {
        let query_id = ctx.fresh_query_id();
        let exclude = self.gets.get(&object).map(|g| g.excluded.clone()).unwrap_or_default();
        if let Some(g) = self.gets.get_mut(&object) {
            if let Some(old) = g.query_id.replace(query_id) {
                self.queries.remove(&old); // abandoned query; drop its reply on arrival
            }
            g.pulling_from = None;
        }
        self.queries.insert(query_id, object);
        ctx.dir_query(object, query_id, exclude, out);
    }

    /// Process a directory query reply: either an inline payload, a location to pull
    /// from, or a deletion notice.
    pub(crate) fn handle_query_reply(
        &mut self,
        ctx: &mut NodeContext,
        _now: Time,
        object: ObjectId,
        query_id: u64,
        result: QueryResult,
        out: &mut Vec<Effect>,
    ) -> Vec<Progress> {
        if self.queries.remove(&query_id) != Some(object) {
            return Vec::new(); // stale reply from an abandoned query
        }
        let Some(get) = self.gets.get_mut(&object) else { return Vec::new() };
        if get.query_id != Some(query_id) {
            return Vec::new();
        }
        get.query_id = None;
        trace!("[n{}] query reply {:?} -> {:?}", ctx.id.0, object, result);
        match result {
            QueryResult::Inline { payload } => {
                ctx.metrics.directory_inline_hits += 1;
                if !ctx.store.contains(object) {
                    let _ = ctx.store.put_complete(object, payload, false);
                }
                vec![Progress::completed(object)]
            }
            QueryResult::Location { node, status: _, size } => {
                if !ctx.store.contains(object) {
                    if let Err(error) =
                        ctx.store.begin_receive(object, size, ctx.opts.synthetic_data)
                    {
                        self.fail_gets(object, error, out);
                        return Vec::new();
                    }
                }
                // Register ourselves as a partial location right away so later
                // receivers can chain off us (§3.4.1), then pull from the chosen
                // sender starting at our current watermark (resume-friendly, §3.5.1).
                let watermark = ctx.store.watermark(object).unwrap_or(0);
                if let Some(g) = self.gets.get_mut(&object) {
                    g.pulling_from = Some(node);
                }
                ctx.dir_register(object, ObjectStatus::Partial, size, out);
                ctx.send(
                    node,
                    Message::PullRequest { object, requester: ctx.id, offset: watermark },
                    out,
                );
                Vec::new()
            }
            QueryResult::Deleted => {
                self.fail_gets(object, HopliteError::ObjectDeleted(object), out);
                Vec::new()
            }
        }
    }

    /// Fail every op parked on `object` with `error`.
    pub(crate) fn fail_gets(
        &mut self,
        object: ObjectId,
        error: HopliteError,
        out: &mut Vec<Effect>,
    ) {
        if let Some(get) = self.gets.remove(&object) {
            for op in get.waiting_ops {
                out.push(Effect::Reply { op, reply: ClientReply::Error { error: error.clone() } });
            }
        }
    }

    // ------------------------------------------------------------------- transfers --

    /// A remote receiver asked us to stream `object` from `offset`.
    pub(crate) fn handle_pull_request(
        &mut self,
        ctx: &mut NodeContext,
        object: ObjectId,
        requester: NodeId,
        offset: u64,
        out: &mut Vec<Effect>,
    ) {
        if !ctx.store.contains(object) {
            ctx.send(
                requester,
                Message::PullError { object, reason: "object not in store".to_string() },
                out,
            );
            return;
        }
        trace!("[n{}] pull request {:?} from {:?} offset={}", ctx.id.0, object, requester, offset);
        ctx.metrics.pulls_served += 1;
        let transfers = self.outgoing.entry(object).or_default();
        transfers.retain(|t| t.to != requester);
        transfers.push(OutgoingTransfer { to: requester, next_offset: offset });
        self.pump_outgoing(ctx, object, out);
    }

    /// Push as many blocks as are locally available to every active outgoing transfer
    /// of `object`. The forward path is zero-copy end to end: each block is read out
    /// of the store as a shared view (segmented if it straddles received blocks) and
    /// rides the outgoing `PushBlock` by reference — the channels fabric passes the
    /// segment vector through untouched and the TCP fabric gathers it into iovecs.
    pub(crate) fn pump_outgoing(
        &mut self,
        ctx: &mut NodeContext,
        object: ObjectId,
        out: &mut Vec<Effect>,
    ) {
        let Some(watermark) = ctx.store.watermark(object) else { return };
        let Some(total) = ctx.store.total_size(object) else { return };
        let Some(transfers) = self.outgoing.get_mut(&object) else { return };
        let block = ctx.cfg.block_size;
        let mut sends: Vec<(NodeId, u64, u64)> = Vec::new();
        for t in transfers.iter_mut() {
            while t.next_offset < watermark {
                let len = block.min(watermark - t.next_offset);
                sends.push((t.to, t.next_offset, len));
                t.next_offset += len;
            }
        }
        transfers.retain(|t| t.next_offset < total);
        if self.outgoing.get(&object).map(|t| t.is_empty()).unwrap_or(false) {
            self.outgoing.remove(&object);
        }
        for (to, offset, len) in sends {
            let payload = ctx
                .store
                .read(object, offset, len)
                .expect("offsets below the watermark are always readable");
            ctx.metrics.data_bytes_sent += payload.len();
            let complete = offset + len >= total;
            ctx.send(
                to,
                Message::PushBlock { object, offset, total_size: total, payload, complete },
                out,
            );
        }
    }

    /// One block of object data arrived from `from`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn handle_push_block(
        &mut self,
        ctx: &mut NodeContext,
        from: NodeId,
        object: ObjectId,
        offset: u64,
        total_size: u64,
        payload: Payload,
        out: &mut Vec<Effect>,
    ) -> Vec<Progress> {
        // Ignore stale blocks from a sender we already abandoned.
        if let Some(get) = self.gets.get(&object) {
            if let Some(current) = get.pulling_from {
                if current != from {
                    return Vec::new();
                }
            }
        }
        if !ctx.store.contains(object)
            && ctx.store.begin_receive(object, total_size, ctx.opts.synthetic_data).is_err()
        {
            return Vec::new();
        }
        ctx.metrics.data_bytes_received += payload.len();
        match ctx.store.append(object, offset, &payload) {
            Ok(watermark) => {
                out.push(Effect::LocalProgress { object, watermark, total_size });
                if watermark >= total_size {
                    vec![Progress::completed(object)]
                } else {
                    vec![Progress::advanced(object)]
                }
            }
            Err(_) => {
                // Out-of-order data (e.g. from a sender we failed over from); ignore.
                Vec::new()
            }
        }
    }

    /// A receiver cancelled its in-flight pull.
    pub(crate) fn cancel_pull(&mut self, object: ObjectId, requester: NodeId) {
        if let Some(transfers) = self.outgoing.get_mut(&object) {
            transfers.retain(|t| t.to != requester);
        }
    }

    /// Bookkeeping common to every way an object can become locally complete: a
    /// finished pull, a finished pipelined put, the inline fast path, or a reduce root
    /// materializing its result.
    pub(crate) fn on_object_complete(
        &mut self,
        ctx: &mut NodeContext,
        object: ObjectId,
        out: &mut Vec<Effect>,
    ) {
        let size = ctx.store.total_size(object).unwrap_or(0);
        trace!("[n{}] object complete {:?} size={}", ctx.id.0, object, size);
        out.push(Effect::LocalProgress { object, watermark: size, total_size: size });
        // Tell the directory we now hold a complete copy, and release the sender we
        // pulled from (if any) so it can serve other receivers again.
        let pulled_from = self.gets.get(&object).and_then(|g| g.pulling_from);
        if !ctx.cfg.is_inline(size) {
            ctx.dir_register(object, ObjectStatus::Complete, size, out);
        }
        if let Some(sender) = pulled_from {
            ctx.dir_transfer_done(object, sender, out);
        }
        // Wake up local clients blocked on Get.
        if let Some(get) = self.gets.remove(&object) {
            if !get.waiting_ops.is_empty() {
                let payload = ctx.store.get_complete(object).expect("object is complete");
                for op in get.waiting_ops {
                    ctx.metrics.gets_completed += 1;
                    out.push(Effect::Reply {
                        op,
                        reply: ClientReply::GetDone { object, payload: payload.clone() },
                    });
                }
            }
        }
        // Serve any receivers chained off us.
        self.pump_outgoing(ctx, object, out);
    }

    // --------------------------------------------------------------------- delete --

    /// The directory shard told us to drop our local copy (delete fan-out).
    pub(crate) fn handle_store_release(
        &mut self,
        ctx: &mut NodeContext,
        object: ObjectId,
        out: &mut Vec<Effect>,
    ) {
        ctx.store.delete(object);
        ctx.directory.forget(object);
        self.pending_puts.remove(&object);
        // Anyone pulling from us can no longer be served.
        self.abort_outgoing(ctx, object, "object deleted", out);
        self.fail_gets(object, HopliteError::ObjectDeleted(object), out);
    }

    /// Abort every outgoing transfer of `object`, telling the receivers why.
    pub(crate) fn abort_outgoing(
        &mut self,
        ctx: &mut NodeContext,
        object: ObjectId,
        reason: &str,
        out: &mut Vec<Effect>,
    ) {
        if let Some(transfers) = self.outgoing.remove(&object) {
            for t in transfers {
                ctx.send(t.to, Message::PullError { object, reason: reason.to_string() }, out);
            }
        }
    }

    /// Drop transfers destined to a failed peer (no messages; the peer is gone).
    pub(crate) fn drop_transfers_to(&mut self, peer: NodeId) {
        for transfers in self.outgoing.values_mut() {
            transfers.retain(|t| t.to != peer);
        }
    }

    /// Objects whose in-flight pull was sourced from `peer`.
    pub(crate) fn pulls_from(&self, peer: NodeId) -> Vec<ObjectId> {
        self.gets.iter().filter(|(_, g)| g.pulling_from == Some(peer)).map(|(o, _)| *o).collect()
    }
}
