//! Failure-adaptation rules (§3.5).
//!
//! Hoplite adapts in-flight collectives instead of restarting them:
//!
//! * **Broadcast (§3.5.1)** — a receiver whose sender failed keeps the blocks it
//!   already has, excludes the failed sender, and re-queries the directory; the reply
//!   points it at another (possibly partial) copy and the pull resumes from its
//!   current watermark. The directory shard refuses assignments that would create
//!   cyclic fetch dependencies among the survivors.
//! * **Reduce (§3.5.2)** — the coordinator vacates every slot the failed node owned,
//!   bumps the accumulation epoch of the slot's ancestors (at most `log_d n` of them),
//!   and refills vacancies from the ready pool. Participants receiving a higher epoch
//!   clear their partial accumulation; participants whose parent changed re-send their
//!   finalized blocks from the start (re-parenting).
//!
//! * **Directory (§3.5)** — the directory is replicated; when a shard primary dies,
//!   a surviving backup is promoted (deterministically, from the shared placement and
//!   failure view) and every client re-drives at the new primary whatever could have
//!   been in flight to the dead one: its journaled registrations, its open
//!   subscriptions, and its outstanding location queries.
//!
//! This module hosts the facade-level orchestration plus the failure-specific methods
//! of the broadcast and reduce engines, so every §3.5 rule lives in one place.

use crate::object::{NodeId, ObjectId};
use crate::protocol::Effect;
use crate::time::Time;

use super::broadcast::BroadcastEngine;
use super::reduce::ReduceEngine;
use super::{trace, NodeContext, ObjectStoreNode};

impl ObjectStoreNode {
    /// Facade-level handling of a peer failure: promote and purge directory replicas,
    /// re-drive directory client state, stop serving the failed node, fail over
    /// in-flight pulls, and repair reduce trees.
    pub(crate) fn peer_failed_impl(&mut self, now: Time, peer: NodeId, out: &mut Vec<Effect>) {
        if peer == self.ctx.id {
            return;
        }
        // Service side first: every hosted replica purges the dead node, and this
        // node promotes itself wherever it just became the first surviving replica —
        // before any client re-drive below can loop back into the service.
        let promoted = self.directory.on_peer_failed(peer);
        if !promoted.is_empty() {
            trace!("[n{}] promoted to primary of shards {:?}", self.ctx.id.0, promoted);
        }
        // Client side: fold the failure into the routing view, then re-drive at the
        // new primaries everything whose delivery to the old one is uncertain. The
        // promoted backup already holds all replicated state; the re-drive closes the
        // in-flight window, and every re-driven op is idempotent at the shard.
        let redrive = self.ctx.directory.on_peer_failed(peer);
        for (object, reg) in redrive.reregister {
            if !self.ctx.store.contains(object) {
                // The journaled copy is gone (evicted or deleted mid-flight).
                self.ctx.directory.forget(object);
                continue;
            }
            if reg.inline {
                if let Some(payload) = self.ctx.store.get_complete(object) {
                    self.ctx.dir_put_inline(object, payload, out);
                    continue;
                }
            }
            self.ctx.dir_register(object, reg.status, reg.size, out);
        }
        for object in redrive.resubscribe {
            self.ctx.dir_subscribe(object, out);
        }
        // Broadcast receivers whose outstanding location query was addressed to a
        // failed-over shard re-issue it (same correlation id; the shard deduplicates).
        self.broadcast.requery_after_failover(&mut self.ctx, now, &redrive.changed_shards, out);
        // Stop serving transfers destined to the dead node.
        self.broadcast.drop_transfers_to(peer);
        // Broadcast receivers that were pulling from it fail over (§3.5.1).
        for object in self.broadcast.pulls_from(peer) {
            self.ctx.metrics.broadcast_failovers += 1;
            self.broadcast.restart_get(&mut self.ctx, now, object, Some(peer), out);
        }
        // Reduce coordinators repair their trees (§3.5.2).
        self.reduce.on_peer_failed(&mut self.ctx, peer, out);
    }
}

impl BroadcastEngine {
    /// Restart a `Get` after its sender became unusable: remember the exclusion and
    /// re-query the directory. Data below the current watermark is kept; the next pull
    /// resumes from it (§3.5.1).
    pub(crate) fn restart_get(
        &mut self,
        ctx: &mut NodeContext,
        now: Time,
        object: ObjectId,
        failed_sender: Option<NodeId>,
        out: &mut Vec<Effect>,
    ) {
        let Some(g) = self.gets.get_mut(&object) else { return };
        if let Some(failed) = failed_sender {
            if !g.excluded.contains(&failed) {
                g.excluded.push(failed);
            }
        }
        g.pulling_from = None;
        self.issue_directory_query(ctx, now, object, out);
    }

    /// Re-issue every outstanding directory query that was addressed to a shard whose
    /// primary just changed. The reply from the dead primary may or may not have been
    /// sent; re-issuing with the *same* correlation id is safe because the shard
    /// replaces a parked duplicate instead of stacking it, and the client ignores
    /// replies for ids it no longer tracks.
    pub(crate) fn requery_after_failover(
        &mut self,
        ctx: &mut NodeContext,
        _now: Time,
        changed_shards: &[usize],
        out: &mut Vec<Effect>,
    ) {
        if changed_shards.is_empty() {
            return;
        }
        let stranded: Vec<(ObjectId, u64)> = self
            .gets
            .iter()
            .filter(|(object, g)| {
                g.query_id.is_some() && changed_shards.contains(&ctx.directory.shard_of(**object))
            })
            .map(|(object, g)| (*object, g.query_id.expect("filtered on Some")))
            .collect();
        for (object, query_id) in stranded {
            ctx.metrics.directory_failovers += 1;
            let exclude = self.gets.get(&object).map(|g| g.excluded.clone()).unwrap_or_default();
            ctx.dir_query(object, query_id, exclude, out);
        }
    }

    /// The sender reported it cannot serve our pull (evicted, deleted, or reset): fail
    /// over exactly as if the sender had died.
    pub(crate) fn on_pull_error(
        &mut self,
        ctx: &mut NodeContext,
        now: Time,
        from: NodeId,
        object: ObjectId,
        out: &mut Vec<Effect>,
    ) {
        if let Some(get) = self.gets.get(&object) {
            if get.pulling_from == Some(from) {
                ctx.metrics.broadcast_failovers += 1;
                self.restart_get(ctx, now, object, Some(from), out);
            }
        }
    }
}

impl ReduceEngine {
    /// Repair every coordinated reduce tree after `peer` failed: vacate its slots,
    /// bump ancestor epochs, refill from the ready pool, and re-issue the affected
    /// instructions (§3.5.2).
    pub(crate) fn on_peer_failed(
        &mut self,
        ctx: &mut NodeContext,
        peer: NodeId,
        out: &mut Vec<Effect>,
    ) {
        let targets: Vec<ObjectId> = self.coordinators.keys().copied().collect();
        for target in targets {
            let mut coord = self.coordinators.remove(&target).expect("coordinator exists");
            if let Some(plan) = coord.plan.as_mut() {
                let delta = plan.on_node_failed(peer);
                ReduceEngine::issue_instructions(ctx, &coord, &delta.affected_slots, out);
            }
            self.coordinators.insert(target, coord);
        }
    }
}
