//! Failure-adaptation rules (§3.5).
//!
//! Hoplite adapts in-flight collectives instead of restarting them:
//!
//! * **Broadcast (§3.5.1)** — a receiver whose sender failed keeps the blocks it
//!   already has, excludes the failed sender, and re-queries the directory; the reply
//!   points it at another (possibly partial) copy and the pull resumes from its
//!   current watermark. The directory shard refuses assignments that would create
//!   cyclic fetch dependencies among the survivors.
//! * **Reduce (§3.5.2)** — the coordinator vacates every slot the failed node owned,
//!   bumps the accumulation epoch of the slot's ancestors (at most `log_d n` of them),
//!   and refills vacancies from the ready pool. Participants receiving a higher epoch
//!   clear their partial accumulation; participants whose parent changed re-send their
//!   finalized blocks from the start (re-parenting).
//!
//! * **Directory (§3.5)** — the directory is replicated behind a sequenced, acked op
//!   log; when a shard primary dies, a surviving backup is promoted (at the shard's
//!   failover epoch, derived from the shared event stream) and every client
//!   re-drives at the new primary only the *genuinely-unacked window*: journaled
//!   intents the old primary never confirmed as replication-durable, plus its
//!   outstanding location queries. Confirmed intents already live in the promoted
//!   backup's acked prefix.
//! * **Recovery (§3.5)** — a restarted node rejoins its replica sets through a state
//!   transfer orchestrated here: demote every hosted replica, request a snapshot of
//!   each shard from the current primary ([`ObjectStoreNode::begin_recovery`]),
//!   install the snapshots and replay the buffered log tail, then broadcast
//!   `DirResynced` so the survivors re-admit the node as a primary candidate. An
//!   interrupted transfer (the source dies mid-resync) is re-targeted at the next
//!   primary.
//!
//! This module hosts the facade-level orchestration plus the failure-specific methods
//! of the broadcast and reduce engines, so every §3.5 rule lives in one place.

use crate::object::{NodeId, ObjectId};
use crate::protocol::{Effect, Message, ShardSnapshot};
use crate::time::Time;

use super::broadcast::BroadcastEngine;
use super::reduce::ReduceEngine;
use super::{trace, NodeContext, ObjectStoreNode};

impl ObjectStoreNode {
    /// Facade-level handling of a peer failure: promote and purge directory replicas,
    /// re-drive directory client state, stop serving the failed node, fail over
    /// in-flight pulls, and repair reduce trees.
    pub(crate) fn peer_failed_impl(&mut self, now: Time, peer: NodeId, out: &mut Vec<Effect>) {
        if peer == self.ctx.id {
            return;
        }
        // Tell the driver first: whatever sourced this verdict (a supervisor
        // notice, the gossip detector, a digest), transports holding real
        // connections to the dead peer must tear them down. Idempotent at the
        // driver; drivers without per-peer state ignore it.
        out.push(Effect::PeerDown { node: peer });
        // Service side first: every hosted replica purges the dead node, this node
        // promotes itself wherever it just became the shard's leader (at the shard's
        // failover epoch), confirms gated by the dead backup's ack are released, and
        // an interrupted resync sourced from the dead node is re-targeted — all
        // before any client re-drive below can loop back into the service.
        let mut service_msgs = Vec::new();
        let promoted = self.directory.on_peer_failed(peer, &mut service_msgs);
        for (to, msg) in service_msgs {
            self.ctx.send(to, msg, out);
        }
        if !promoted.is_empty() {
            trace!("[n{}] promoted to primary of shards {:?}", self.ctx.id.0, promoted);
        }
        // The failure may also have completed this node's own resync (its last
        // outstanding snapshot source died): announce re-admission if so.
        self.maybe_announce_readmission(now, out);
        // Client side: fold the failure into the routing view, then re-drive at the
        // new primaries the genuinely-unacked window — journaled intents the dead
        // primary never confirmed as replication-durable. Everything confirmed is
        // already inside the promoted backup's acked prefix. Every re-driven op is
        // idempotent at the shard.
        let redrive = self.ctx.directory.on_peer_failed(peer);
        self.apply_directory_redrive(now, redrive, out);
        // Stop serving transfers destined to the dead node.
        self.broadcast.drop_transfers_to(peer);
        // Broadcast receivers that were pulling from it fail over (§3.5.1).
        for object in self.broadcast.pulls_from(peer) {
            self.ctx.metrics.broadcast_failovers += 1;
            self.broadcast.restart_get(&mut self.ctx, now, object, Some(peer), out);
        }
        // Reduce coordinators repair their trees (§3.5.2).
        self.reduce.on_peer_failed(&mut self.ctx, peer, out);
    }

    /// Re-send the genuinely-unacked window at a shard's new primary — after a
    /// failover, or after a re-admission that gave a leaderless shard a primary
    /// again. Outstanding location queries for the affected shards are re-issued too
    /// (same correlation id; the shard deduplicates).
    pub(crate) fn apply_directory_redrive(
        &mut self,
        now: Time,
        redrive: crate::directory::FailoverRedrive,
        out: &mut Vec<Effect>,
    ) {
        for (object, reg) in redrive.reregister {
            if !self.ctx.store.contains(object) {
                // The journaled copy is gone (evicted or deleted mid-flight).
                self.ctx.directory.forget(object);
                continue;
            }
            self.ctx.metrics.directory_redrives += 1;
            if reg.inline {
                if let Some(payload) = self.ctx.store.get_complete(object) {
                    self.ctx.dir_put_inline(object, payload, out);
                    continue;
                }
            }
            self.ctx.dir_register(object, reg.status, reg.size, out);
        }
        for object in redrive.resubscribe {
            self.ctx.metrics.directory_redrives += 1;
            self.ctx.dir_subscribe(object, out);
        }
        self.broadcast.requery_after_failover(&mut self.ctx, now, &redrive.changed_shards, out);
    }

    /// If the directory service just completed this node's resync (last snapshot
    /// installed, or the last sourceless shard abandoned), make the client eligible
    /// again, re-drive the unconfirmed window of any shard this node itself just
    /// gave a primary back to, and broadcast `DirResynced` to every peer.
    pub(crate) fn maybe_announce_readmission(&mut self, now: Time, out: &mut Vec<Effect>) {
        if !self.directory.take_readmission_announcement() {
            return;
        }
        trace!("[n{}] resync complete; announcing re-admission", self.ctx.id.0);
        let redrive = self.ctx.directory.finish_self_resync();
        self.apply_directory_redrive(now, redrive, out);
        let me = self.ctx.id;
        let incarnation = self.ctx.membership.self_incarnation();
        let peers: Vec<NodeId> =
            self.ctx.directory.nodes().iter().copied().filter(|&n| n != me).collect();
        for peer in peers {
            self.ctx.send(peer, Message::DirResynced { node: me, incarnation }, out);
        }
    }

    /// Begin recovery after a process restart: demote every hosted directory replica,
    /// route this node's own directory traffic away from itself, and request a state
    /// snapshot of each hosted shard from the believed current primary. The driver
    /// calls this exactly once on a node it restarted (never on cold boot). When the
    /// last snapshot installs, [`ObjectStoreNode::handle_dir_snapshot`] announces
    /// `DirResynced` cluster-wide and the node becomes a primary candidate again.
    pub fn begin_recovery(&mut self, now: Time, out: &mut Vec<Effect>) {
        let mut requests = Vec::new();
        let any = self.directory.begin_local_resync(&mut requests);
        if any {
            self.ctx.directory.begin_self_resync();
            trace!("[n{}] restarted: requesting {} shard snapshots", self.ctx.id.0, requests.len());
        }
        for (to, msg) in requests {
            self.ctx.send(to, msg, out);
        }
        self.drain_self_queue(now, out);
        self.finish_turn(out);
    }

    /// Install one resync snapshot: adopt the shard state, log position, and the
    /// authoritative placement cursor (so this node's routing cannot fail back to
    /// itself), ack the catch-up point to the shipping primary, and — once every
    /// hosted shard has installed — broadcast `DirResynced` so the survivors re-admit
    /// this node.
    #[allow(clippy::too_many_arguments)] // mirrors the DirSnapshot wire fields
    pub(crate) fn handle_dir_snapshot(
        &mut self,
        now: Time,
        shard: usize,
        epoch: u64,
        seq: u64,
        rank: usize,
        state: &ShardSnapshot,
        from: NodeId,
        out: &mut Vec<Effect>,
    ) {
        let mut replies = Vec::new();
        let installed =
            self.directory.handle_snapshot(shard, epoch, seq, rank, state, from, &mut replies);
        if installed {
            self.ctx.metrics.directory_resyncs += 1;
            self.ctx.directory.set_shard_rank(shard, rank);
        }
        for (to, msg) in replies {
            self.ctx.send(to, msg, out);
        }
        self.maybe_announce_readmission(now, out);
    }

    /// Install one bounded chunk of a resync stream. Mid-stream chunks answer with a
    /// continuation request from the installed cursor; the final chunk completes the
    /// resync exactly like a monolithic snapshot (rank adoption, catch-up ack,
    /// re-admission announcement).
    #[allow(clippy::too_many_arguments)] // mirrors the DirSnapshotChunk wire fields
    pub(crate) fn handle_dir_snapshot_chunk(
        &mut self,
        now: Time,
        shard: usize,
        epoch: u64,
        seq: u64,
        rank: usize,
        done: bool,
        state: &ShardSnapshot,
        from: NodeId,
        out: &mut Vec<Effect>,
    ) {
        let mut replies = Vec::new();
        let completed = self.directory.handle_snapshot_chunk(
            shard,
            epoch,
            seq,
            rank,
            done,
            state,
            from,
            &mut replies,
        );
        if completed {
            self.ctx.metrics.directory_resyncs += 1;
            self.ctx.directory.set_shard_rank(shard, rank);
        }
        for (to, msg) in replies {
            self.ctx.send(to, msg, out);
        }
        self.maybe_announce_readmission(now, out);
    }

    /// Replay one frame of a delta resync — the source bridged this replica's gap
    /// from its retained log suffix instead of shipping state. The final frame
    /// completes the resync like a snapshot installation (no rank adoption: a
    /// delta-served replica's placement view was never behind).
    #[allow(clippy::too_many_arguments)] // mirrors the DirResyncDelta wire fields
    pub(crate) fn handle_dir_resync_delta(
        &mut self,
        now: Time,
        shard: usize,
        epoch: u64,
        ops: &[(u64, crate::protocol::DirOp)],
        done: bool,
        from: NodeId,
        out: &mut Vec<Effect>,
    ) {
        let mut replies = Vec::new();
        let completed =
            self.directory.handle_resync_delta(shard, epoch, ops, done, from, &mut replies);
        if completed {
            self.ctx.metrics.directory_resyncs += 1;
        }
        for (to, msg) in replies {
            self.ctx.send(to, msg, out);
        }
        self.maybe_announce_readmission(now, out);
    }
}

impl BroadcastEngine {
    /// Restart a `Get` after its sender became unusable: remember the exclusion and
    /// re-query the directory. Data below the current watermark is kept; the next pull
    /// resumes from it (§3.5.1).
    pub(crate) fn restart_get(
        &mut self,
        ctx: &mut NodeContext,
        now: Time,
        object: ObjectId,
        failed_sender: Option<NodeId>,
        out: &mut Vec<Effect>,
    ) {
        let Some(g) = self.gets.get_mut(&object) else { return };
        if let Some(failed) = failed_sender {
            if !g.excluded.contains(&failed) {
                g.excluded.push(failed);
            }
        }
        g.pulling_from = None;
        self.issue_directory_query(ctx, now, object, out);
    }

    /// Re-issue every outstanding directory query that was addressed to a shard whose
    /// primary just changed. The reply from the dead primary may or may not have been
    /// sent; re-issuing with the *same* correlation id is safe because the shard
    /// replaces a parked duplicate instead of stacking it, and the client ignores
    /// replies for ids it no longer tracks.
    pub(crate) fn requery_after_failover(
        &mut self,
        ctx: &mut NodeContext,
        _now: Time,
        changed_shards: &[usize],
        out: &mut Vec<Effect>,
    ) {
        if changed_shards.is_empty() {
            return;
        }
        let stranded: Vec<(ObjectId, u64)> = self
            .gets
            .iter()
            .filter(|(object, g)| {
                g.query_id.is_some() && changed_shards.contains(&ctx.directory.shard_of(**object))
            })
            .map(|(object, g)| (*object, g.query_id.expect("filtered on Some")))
            .collect();
        for (object, query_id) in stranded {
            ctx.metrics.directory_failovers += 1;
            let exclude = self.gets.get(&object).map(|g| g.excluded.clone()).unwrap_or_default();
            ctx.dir_query(object, query_id, exclude, out);
        }
    }

    /// The sender reported it cannot serve our pull (evicted, deleted, or reset): fail
    /// over exactly as if the sender had died.
    pub(crate) fn on_pull_error(
        &mut self,
        ctx: &mut NodeContext,
        now: Time,
        from: NodeId,
        object: ObjectId,
        out: &mut Vec<Effect>,
    ) {
        if let Some(get) = self.gets.get(&object) {
            if get.pulling_from == Some(from) {
                ctx.metrics.broadcast_failovers += 1;
                self.restart_get(ctx, now, object, Some(from), out);
            }
        }
    }
}

impl ReduceEngine {
    /// Repair every coordinated reduce tree after `peer` failed: vacate its slots,
    /// bump ancestor epochs, refill from the ready pool, and re-issue the affected
    /// instructions (§3.5.2).
    pub(crate) fn on_peer_failed(
        &mut self,
        ctx: &mut NodeContext,
        peer: NodeId,
        out: &mut Vec<Effect>,
    ) {
        let targets: Vec<ObjectId> = self.coordinators.keys().copied().collect();
        for target in targets {
            let mut coord = self.coordinators.remove(&target).expect("coordinator exists");
            if let Some(plan) = coord.plan.as_mut() {
                let delta = plan.on_node_failed(peer);
                ReduceEngine::issue_instructions(ctx, &coord, &delta.affected_slots, out);
            }
            self.coordinators.insert(target, coord);
        }
    }
}
