//! The reduce engines (§3.4.2): the coordinator that grows dynamic d-ary trees in
//! arrival order, and the per-slot participant that accumulates and streams
//! partially-reduced blocks.
//!
//! The coordinator subscribes to every source object's directory shard; each location
//! publication offers the object to the [`ReduceTreePlan`], which assigns it the next
//! in-order slot and reports which slots' instructions changed. Participants receive
//! those instructions, fold their own object's blocks together with the streams from
//! their child slots, and emit finalized blocks upward — or, at the root, into the
//! local result object.
//!
//! The engine owns all reduce state and reports store-level side effects back to the
//! facade as [`ReduceEvent`]s: root writes advance the result object (which may have
//! chained broadcast receivers), and epoch bumps invalidate a partially-materialized
//! result (which must abort anyone pulling it).

use std::collections::HashMap;

use bytes::Bytes;

use crate::buffer::Payload;
use crate::copytrace;
use crate::object::{ObjectId, ObjectStatus};
use crate::protocol::{Effect, Message, ReduceInstruction};
use crate::reduce::ReduceSpec;

use super::coordinator::ReduceCoordinator;
use super::{trace, NodeContext};

/// Store-level side effects of reduce processing, routed by the facade.
#[derive(Clone, Copy, Debug)]
pub(crate) enum ReduceEvent {
    /// The (root's local) result object advanced; `completed` when fully materialized.
    Progress {
        /// The object that advanced.
        object: ObjectId,
        /// `true` once the object is complete.
        completed: bool,
    },
    /// A partially-materialized local object was dropped (epoch bump, §3.5.2).
    Invalidate {
        /// The dropped object.
        object: ObjectId,
    },
}

/// One accumulating block of a reduce participant.
///
/// Blocks are combined **as they arrive** (the paper's §3.4.2 pipelined reduce) and
/// **in place**: the first input is retained as a zero-copy shared view; the second
/// input pays the single owning copy and every input after that folds into the same
/// buffer via [`ReduceSpec::combine_into`] — no per-input allocation, no per-input
/// output copy. Emission freezes the buffer into a shared [`Bytes`] without copying,
/// so re-sends after a parent change are refcount bumps.
#[derive(Debug, Clone, Default)]
struct BlockAccum {
    state: BlockState,
    inputs_applied: usize,
}

/// Accumulation state of one block.
#[derive(Debug, Clone, Default)]
enum BlockState {
    /// No input yet.
    #[default]
    Empty,
    /// Exactly one input so far, held as a zero-copy shared view (a leaf that only
    /// ever sees one input never copies at all). Synthetic inputs stay here.
    First(Payload),
    /// Two or more real inputs folded into an owned in-place accumulator.
    Accum(Vec<u8>),
    /// Finalized and emitted at least once; shared so re-sends are refcount bumps.
    Frozen(Bytes),
}

impl BlockAccum {
    /// Fold one input into the block. Returns `false` — leaving the accumulated state
    /// untouched — when the input is shape-incompatible (the caller discards it).
    fn fold(&mut self, spec: ReduceSpec, target: ObjectId, block: &Payload) -> bool {
        match &mut self.state {
            BlockState::Empty => {
                self.state = BlockState::First(block.clone());
            }
            BlockState::First(existing) => {
                if existing.len() != block.len() {
                    return false;
                }
                if existing.is_synthetic() || block.is_synthetic() {
                    // Simulator mode (or a driver mixing modes): lengths only.
                    let len = existing.len();
                    self.state = BlockState::First(Payload::synthetic(len));
                } else {
                    let mut acc = existing.to_owned_vec().expect("real payload");
                    if spec.combine_into(target, &mut acc, block).is_err() {
                        return false;
                    }
                    self.state = BlockState::Accum(acc);
                }
            }
            BlockState::Accum(acc) => {
                if spec.combine_into(target, acc, block).is_err() {
                    return false;
                }
            }
            BlockState::Frozen(frozen) => {
                // A straggler after emission (e.g. a replay racing a repair): thaw the
                // frozen bytes back into an accumulator and keep going.
                if frozen.len() as u64 != block.len() {
                    return false;
                }
                copytrace::record(frozen.len());
                let mut acc = frozen.to_vec();
                if spec.combine_into(target, &mut acc, block).is_err() {
                    return false;
                }
                self.state = BlockState::Accum(acc);
            }
        }
        self.inputs_applied += 1;
        true
    }

    /// `true` once the block holds data from all `num_inputs` expected inputs.
    fn is_ready(&self, num_inputs: usize) -> bool {
        self.inputs_applied >= num_inputs && !matches!(self.state, BlockState::Empty)
    }

    /// The finalized payload for emission. Freezes an in-place accumulator into a
    /// shared buffer (a zero-copy move), so this and every later call are cheap.
    fn emit(&mut self) -> Option<Payload> {
        match &mut self.state {
            BlockState::Empty => None,
            BlockState::First(p) => Some(p.clone()),
            BlockState::Accum(acc) => {
                let frozen = Bytes::from(std::mem::take(acc));
                self.state = BlockState::Frozen(frozen.clone());
                Some(Payload::Bytes(frozen))
            }
            BlockState::Frozen(frozen) => Some(Payload::Bytes(frozen.clone())),
        }
    }
}

/// Per-slot reduce participant state.
#[derive(Debug)]
struct ReduceParticipant {
    instr: ReduceInstruction,
    blocks: Vec<BlockAccum>,
    /// Number of own-object blocks already folded into `blocks`.
    own_blocks_ingested: u64,
    /// Next block index to emit (to the parent, or into the local result object for
    /// the root).
    next_emit_block: u64,
    /// Root only: whether the result object has been created in the local store.
    root_started: bool,
}

impl ReduceParticipant {
    fn new(instr: ReduceInstruction) -> Self {
        let num_blocks = num_blocks(instr.object_size, instr.block_size) as usize;
        ReduceParticipant {
            instr,
            blocks: vec![BlockAccum::default(); num_blocks.max(1)],
            own_blocks_ingested: 0,
            next_emit_block: 0,
            root_started: false,
        }
    }

    fn reset(&mut self) {
        for b in &mut self.blocks {
            *b = BlockAccum::default();
        }
        self.own_blocks_ingested = 0;
        self.next_emit_block = 0;
        self.root_started = false;
    }
}

fn num_blocks(size: u64, block: u64) -> u64 {
    if size == 0 {
        0
    } else {
        size.div_ceil(block)
    }
}

/// A reduce block that arrived before this node learned it owns the destination
/// slot. Children start streaming as soon as they know their parent's identity, and
/// nothing orders a child's first block after the parent's own instruction (the two
/// race on different links, or through the loopback queue when the slots are
/// co-located), so early blocks are parked here and replayed once the instruction
/// arrives.
#[derive(Debug)]
struct EarlyBlock {
    from_slot: usize,
    parent_epoch: u64,
    block_index: u64,
    object_size: u64,
    payload: Payload,
}

/// Cap on parked early blocks per slot; once full, later arrivals are discarded (the
/// child re-sends from scratch after the next repair, so this only bounds memory while
/// the instruction is in flight — normally a handful of blocks).
const MAX_EARLY_BLOCKS: usize = 256;

/// The reduce coordinator + participant engine.
#[derive(Default)]
pub(crate) struct ReduceEngine {
    /// Reduce coordinators keyed by target object.
    pub(crate) coordinators: HashMap<ObjectId, ReduceCoordinator>,
    /// Source object -> reduce targets coordinated here that consume it.
    pub(super) source_routing: HashMap<ObjectId, Vec<ObjectId>>,
    /// Reduce participants keyed by (target, slot).
    participants: HashMap<(ObjectId, usize), ReduceParticipant>,
    /// Local object -> participant keys that use it as their own input.
    own_object_routing: HashMap<ObjectId, Vec<(ObjectId, usize)>>,
    /// Blocks that arrived before their slot's instruction, keyed by (target, slot).
    early_blocks: HashMap<(ObjectId, usize), Vec<EarlyBlock>>,
}

impl ReduceEngine {
    // -------------------------------------------------------------- participation --

    /// A (new or updated) instruction for a slot this node owns.
    pub(crate) fn on_instruction(
        &mut self,
        ctx: &mut NodeContext,
        instr: ReduceInstruction,
        out: &mut Vec<Effect>,
    ) -> Vec<ReduceEvent> {
        let key = (instr.target, instr.slot);
        let own_object = instr.own_object;
        trace!(
            "[n{}] got instr slot={} epoch={} own={:?} parent={:?}",
            ctx.id.0,
            instr.slot,
            instr.epoch,
            instr.own_object,
            instr.parent
        );
        let mut events = Vec::new();
        match self.participants.get_mut(&key) {
            Some(existing) => {
                let epoch_bumped = instr.epoch > existing.instr.epoch;
                let parent_changed = existing.instr.parent != instr.parent;
                let previous_root_started = existing.root_started;
                existing.instr = instr;
                if epoch_bumped {
                    ctx.metrics.reduce_resets += 1;
                    existing.reset();
                    // The root clears the partially-materialized result object too.
                    if previous_root_started {
                        let target = key.0;
                        if self.invalidate_local_object(ctx, target, out) {
                            events.push(ReduceEvent::Invalidate { object: target });
                        }
                    }
                } else if parent_changed {
                    // Same accumulated data, new (or restarted) parent: re-send our
                    // finalized blocks from the start.
                    existing.next_emit_block = 0;
                }
            }
            None => {
                let participant = ReduceParticipant::new(instr);
                self.own_object_routing.entry(own_object).or_default().push(key);
                self.participants.insert(key, participant);
                // Replay any child blocks that raced ahead of this instruction.
                if let Some(early) = self.early_blocks.remove(&key) {
                    let p = self.participants.get_mut(&key).expect("just inserted");
                    for block in early {
                        Self::apply_block(ctx, p, key.0, &block);
                    }
                }
            }
        }
        events.extend(self.pump_participant(ctx, key, out));
        events
    }

    /// Fold one child block into a participant's accumulator, discarding stale or
    /// mismatched blocks.
    fn apply_block(
        ctx: &mut NodeContext,
        p: &mut ReduceParticipant,
        target: ObjectId,
        block: &EarlyBlock,
    ) {
        if block.parent_epoch != p.instr.epoch {
            return; // stale block from before a repair
        }
        if block.object_size != p.instr.object_size {
            return;
        }
        trace!(
            "[n{}] reduce block target={:?} to_slot={} from_slot={} epoch={} idx={}",
            ctx.id.0,
            target,
            p.instr.slot,
            block.from_slot,
            block.parent_epoch,
            block.block_index
        );
        ctx.metrics.data_bytes_received += block.payload.len();
        let idx = block.block_index as usize;
        if idx >= p.blocks.len() {
            return;
        }
        let spec = p.instr.spec;
        p.blocks[idx].fold(spec, target, &block.payload);
    }

    /// A partially-reduced block arrived from a child slot.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn on_block(
        &mut self,
        ctx: &mut NodeContext,
        target: ObjectId,
        to_slot: usize,
        from_slot: usize,
        parent_epoch: u64,
        block_index: u64,
        object_size: u64,
        payload: Payload,
        out: &mut Vec<Effect>,
    ) -> Vec<ReduceEvent> {
        let key = (target, to_slot);
        let block = EarlyBlock { from_slot, parent_epoch, block_index, object_size, payload };
        let Some(p) = self.participants.get_mut(&key) else {
            // The sender learned about this slot's assignment before we did (its
            // instruction and our instruction race on independent links). Park the
            // block; it is replayed when our instruction arrives.
            trace!(
                "[n{}] parking early block target={:?} to_slot={} from_slot={} idx={}",
                ctx.id.0,
                target,
                to_slot,
                from_slot,
                block_index
            );
            let parked = self.early_blocks.entry(key).or_default();
            if parked.len() < MAX_EARLY_BLOCKS {
                parked.push(block);
            }
            return Vec::new();
        };
        Self::apply_block(ctx, p, target, &block);
        self.pump_participant(ctx, key, out)
    }

    /// Re-pump every participant whose own input object is `object` (called by the
    /// facade when that object's local watermark advances).
    pub(crate) fn pump_for(
        &mut self,
        ctx: &mut NodeContext,
        object: ObjectId,
        out: &mut Vec<Effect>,
    ) -> Vec<ReduceEvent> {
        let mut events = Vec::new();
        if let Some(keys) = self.own_object_routing.get(&object).cloned() {
            for key in keys {
                events.extend(self.pump_participant(ctx, key, out));
            }
        }
        events
    }

    /// Ingest newly-available own-object blocks and emit every finalized block in
    /// order, either to the parent slot or — for the root — into the local result
    /// object.
    fn pump_participant(
        &mut self,
        ctx: &mut NodeContext,
        key: (ObjectId, usize),
        out: &mut Vec<Effect>,
    ) -> Vec<ReduceEvent> {
        let mut events = Vec::new();
        let Some(p) = self.participants.get_mut(&key) else { return events };
        let target = p.instr.target;
        let spec = p.instr.spec;
        let block_size = p.instr.block_size;
        let object_size = p.instr.object_size;
        let total_blocks = num_blocks(object_size, block_size);

        // 1. Fold in own-object blocks that are now below the local watermark.
        let own = p.instr.own_object;
        let own_watermark = ctx.store.watermark(own).unwrap_or(0);
        let mut ingested = p.own_blocks_ingested;
        let mut to_ingest: Vec<(u64, u64, u64)> = Vec::new();
        while ingested < total_blocks {
            let offset = ingested * block_size;
            let len = block_size.min(object_size - offset);
            if offset + len > own_watermark {
                break;
            }
            to_ingest.push((ingested, offset, len));
            ingested += 1;
        }
        for (block_idx, offset, len) in to_ingest {
            let Some(block) = ctx.store.read(own, offset, len) else { break };
            let p = self.participants.get_mut(&key).expect("participant exists");
            if !p.blocks[block_idx as usize].fold(spec, target, &block) {
                break;
            }
            p.own_blocks_ingested = block_idx + 1;
        }

        // 2. Emit finalized blocks in order.
        loop {
            let p = self.participants.get_mut(&key).expect("participant exists");
            let idx = p.next_emit_block;
            if idx >= total_blocks {
                break;
            }
            let num_inputs = p.instr.num_inputs;
            if !p.blocks[idx as usize].is_ready(num_inputs) {
                break;
            }
            let payload = p.blocks[idx as usize].emit().expect("ready block has data");
            let is_root = p.instr.is_root;
            let parent = p.instr.parent;
            let slot = p.instr.slot;
            let coordinator = p.instr.coordinator;
            if is_root {
                // Materialize the result object locally, registering it as a partial
                // location right away so a following broadcast can start (§3.3).
                if !p.root_started {
                    p.root_started = true;
                    if !ctx.store.contains(target) {
                        let _ = ctx.store.begin_receive(
                            target,
                            object_size,
                            ctx.opts.synthetic_data || payload.is_synthetic(),
                        );
                        if !ctx.cfg.is_inline(object_size) {
                            ctx.dir_register(target, ObjectStatus::Partial, object_size, out);
                        }
                    }
                }
                let offset = idx * block_size;
                if ctx.store.append(target, offset, &payload).is_ok() {
                    let p = self.participants.get_mut(&key).expect("participant exists");
                    p.next_emit_block = idx + 1;
                    let watermark = ctx.store.watermark(target).unwrap_or(0);
                    out.push(Effect::LocalProgress {
                        object: target,
                        watermark,
                        total_size: object_size,
                    });
                    if watermark >= object_size {
                        // Small results go through the inline fast path like any Put.
                        if ctx.cfg.is_inline(object_size) {
                            if let Some(full) = ctx.store.get_complete(target) {
                                ctx.dir_put_inline(target, full, out);
                            }
                        }
                        trace!("[n{}] root completed {:?}", ctx.id.0, target);
                        events.push(ReduceEvent::Progress { object: target, completed: true });
                        ctx.send(coordinator, Message::ReduceDone { target, root: ctx.id }, out);
                    } else {
                        events.push(ReduceEvent::Progress { object: target, completed: false });
                    }
                } else {
                    break;
                }
            } else {
                let Some(parent) = parent else { break };
                ctx.metrics.reduce_blocks_sent += 1;
                ctx.metrics.data_bytes_sent += payload.len();
                ctx.send(
                    parent.node,
                    Message::ReduceBlock {
                        target,
                        to_slot: parent.slot,
                        from_slot: slot,
                        parent_epoch: parent.epoch,
                        block_index: idx,
                        object_size,
                        payload,
                    },
                    out,
                );
                let p = self.participants.get_mut(&key).expect("participant exists");
                p.next_emit_block = idx + 1;
            }
        }
        events
    }

    /// Release every participant slot, parked early block, and routing entry for a
    /// completed reduce (the coordinator broadcasts [`Message::ReduceRelease`] once
    /// the root reports done). Without this, long-lived serving clusters accumulate
    /// one participant + accumulator set per reduce ever run.
    pub(crate) fn on_release(&mut self, target: ObjectId) {
        self.participants.retain(|(t, _), _| *t != target);
        self.early_blocks.retain(|(t, _), _| *t != target);
        self.own_object_routing.retain(|_, keys| {
            keys.retain(|(t, _)| *t != target);
            !keys.is_empty()
        });
    }

    /// `true` when the engine holds no reduce state at all (GC tests).
    pub(crate) fn is_idle(&self) -> bool {
        self.participants.is_empty()
            && self.coordinators.is_empty()
            && self.early_blocks.is_empty()
            && self.source_routing.is_empty()
            && self.own_object_routing.is_empty()
    }

    /// Drop an invalid local partial copy (used when a reduce root clears its result):
    /// delete it from the store and unregister from the directory. Returns `true` when
    /// a copy was actually dropped (so the facade aborts downstream pullers).
    fn invalidate_local_object(
        &mut self,
        ctx: &mut NodeContext,
        object: ObjectId,
        out: &mut Vec<Effect>,
    ) -> bool {
        if !ctx.store.contains(object) {
            return false;
        }
        ctx.store.delete(object);
        ctx.dir_unregister(object, out);
        true
    }
}
