//! Monotonic time used by the sans-IO protocol state machines.
//!
//! The core never reads a clock. Drivers (the discrete-event simulator or the real
//! threaded transport) pass the current [`Time`] into every state-machine call and are
//! responsible for firing timers the core requests. This is what lets the identical
//! protocol code run both under simulation and over real sockets.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A monotonic instant measured in nanoseconds from an arbitrary epoch.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

/// A span of time in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub u64);

impl Time {
    /// The zero instant.
    pub const ZERO: Time = Time(0);

    /// Construct from whole seconds.
    pub fn from_secs_f64(secs: f64) -> Time {
        Time((secs * 1e9) as u64)
    }

    /// Nanoseconds since the epoch.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch as a float (used for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`, saturating at zero.
    pub fn duration_since(self, earlier: Time) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Duration {
    /// The zero duration.
    pub const ZERO: Duration = Duration(0);

    /// Construct from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Duration {
        Duration(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Duration {
        Duration(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Duration {
        Duration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Duration {
        Duration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds.
    pub fn from_secs_f64(secs: f64) -> Duration {
        Duration((secs.max(0.0) * 1e9) as u64)
    }

    /// Nanoseconds in this duration.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds in this duration (truncating).
    pub fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds in this duration (truncating).
    pub fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: Duration) -> Duration {
        Duration(self.0.saturating_sub(other.0))
    }

    /// Multiply by an integer factor.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, factor: u64) -> Duration {
        Duration(self.0 * factor)
    }

    /// Scale by a float factor (used by bandwidth models).
    pub fn mul_f64(self, factor: f64) -> Duration {
        Duration((self.0 as f64 * factor) as u64)
    }

    /// Convert to a std duration (for real-time drivers).
    pub fn to_std(self) -> std::time::Duration {
        std::time::Duration::from_nanos(self.0)
    }

    /// Convert from a std duration.
    pub fn from_std(d: std::time::Duration) -> Duration {
        Duration(d.as_nanos().min(u128::from(u64::MAX)) as u64)
    }
}

impl Add<Duration> for Time {
    type Output = Time;
    fn add(self, rhs: Duration) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Time {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Time> for Time {
    type Output = Duration;
    fn sub(self, rhs: Time) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<Duration> for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Duration> for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{}us", self.0 as f64 / 1e3)
        }
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrips() {
        let t = Time::ZERO + Duration::from_millis(5);
        assert_eq!(t.as_nanos(), 5_000_000);
        assert_eq!((t - Time::ZERO).as_millis(), 5);
        assert_eq!(t.duration_since(Time(10_000_000)), Duration::ZERO);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(Duration::from_secs(1), Duration::from_millis(1000));
        assert_eq!(Duration::from_millis(1), Duration::from_micros(1000));
        assert_eq!(Duration::from_micros(1), Duration::from_nanos(1000));
        assert!((Duration::from_secs_f64(0.5).as_secs_f64() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn std_conversion() {
        let d = Duration::from_millis(123);
        assert_eq!(Duration::from_std(d.to_std()), d);
    }

    #[test]
    fn saturating_behaviour() {
        assert_eq!(Duration::from_nanos(5).saturating_sub(Duration::from_nanos(9)), Duration::ZERO);
        assert_eq!(Duration::from_nanos(5) - Duration::from_nanos(9), Duration::ZERO);
    }
}
