//! # Hoplite core
//!
//! A from-scratch Rust implementation of **Hoplite** (SIGCOMM 2021): efficient and
//! fault-tolerant collective communication for task-based distributed systems.
//!
//! The crate is *sans-IO*: every protocol component is a state machine that consumes
//! messages/timers and produces [`protocol::Effect`]s, in the style of event-driven
//! network stacks. Drivers live elsewhere:
//!
//! * `hoplite-simnet` + `hoplite-cluster` run the state machines on a discrete-event
//!   cluster simulator to reproduce the paper's 16-node evaluation;
//! * `hoplite-transport` + `hoplite-cluster` run the identical state machines over
//!   real in-process channels or localhost TCP sockets.
//!
//! ## The pieces
//!
//! | Paper concept | Module |
//! |---|---|
//! | `ObjectID`, partial/complete locations | [`object`] |
//! | Replicated object directory with inline small-object cache (§3.2, §3.5) | [`directory`] (shard / replication / service / client layers) |
//! | Local object store, pinning, LRU eviction (§6) | [`store`] |
//! | Fine-grained pipelining buffers (§3.3) | [`buffer`] |
//! | Receiver-driven broadcast, pull protocol (§3.4.1) | [`node`] (`node/broadcast.rs`) |
//! | Dynamic d-ary reduce trees and the degree model (§3.4.2, Appendix B) | [`node`] (`node/reduce.rs`) + [`reduce`] |
//! | Fault-tolerant schedule adaptation (§3.5) | [`node`] (`node/failure.rs`) + [`reduce::tree`] |
//! | `Put` / `Get` / `Delete` / `Reduce` API (Table 1) | [`protocol::ClientOp`] |
//!
//! [`node::ObjectStoreNode`] itself is a thin facade: the broadcast, reduce, and
//! failure engines each own their state in a `node/` submodule, communicate through a
//! shared context, and are pumped by the driver-side `NodeRuntime` in
//! `hoplite-cluster`.
//!
//! ## Quick example (two in-memory nodes, hand-driven)
//!
//! ```
//! use hoplite_core::prelude::*;
//!
//! let cluster = ClusterView::of_size(2);
//! let cfg = HopliteConfig::small_for_tests();
//! let mut a = ObjectStoreNode::new(NodeId(0), cfg.clone(), cluster.clone(), NodeOptions::default());
//! let mut b = ObjectStoreNode::new(NodeId(1), cfg, cluster, NodeOptions::default());
//!
//! // Node 0 puts an object, node 1 gets it; a tiny hand-rolled driver shuttles
//! // messages until the Get completes.
//! let obj = ObjectId::from_name("hello");
//! let mut fx_a = Vec::new();
//! a.handle_client(Time::ZERO, OpId(1), ClientOp::Put { object: obj, payload: Payload::from_vec(vec![1, 2, 3]) }, &mut fx_a);
//! let mut fx_b = Vec::new();
//! b.handle_client(Time::ZERO, OpId(2), ClientOp::Get { object: obj }, &mut fx_b);
//!
//! let mut pending = vec![(NodeId(0), fx_a), (NodeId(1), fx_b)];
//! let mut got = None;
//! while let Some((from, effects)) = pending.pop() {
//!     for e in effects {
//!         match e {
//!             Effect::Send { to, msg } => {
//!                 let mut out = Vec::new();
//!                 if to == NodeId(0) { a.handle_message(Time::ZERO, from, msg, &mut out); }
//!                 else { b.handle_message(Time::ZERO, from, msg, &mut out); }
//!                 pending.push((to, out));
//!             }
//!             Effect::Reply { reply: ClientReply::GetDone { payload, .. }, .. } => got = Some(payload),
//!             _ => {}
//!         }
//!     }
//! }
//! assert_eq!(got.unwrap().as_bytes().unwrap().as_ref(), &[1, 2, 3]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod buffer;
pub mod config;
pub mod copytrace;
pub mod detector;
pub mod directory;
pub mod error;
pub mod membership;
pub mod metrics;
pub mod node;
pub mod object;
pub mod protocol;
pub mod reduce;
pub mod store;
pub mod time;

/// Convenience re-exports of the most commonly used types.
pub mod prelude {
    pub use crate::buffer::{Payload, ProgressBuffer};
    pub use crate::config::HopliteConfig;
    pub use crate::detector::{
        DetectorAction, DetectorConfig, FailureDetector, GossipEntry, GossipState,
    };
    pub use crate::directory::{DirectoryPlacement, DirectoryShard};
    pub use crate::error::{HopliteError, Result};
    pub use crate::membership::{
        AliveVerdict, DigestOutcome, FailureVerdict, MemberDigestEntry, MembershipView,
    };
    pub use crate::metrics::NodeMetrics;
    pub use crate::node::{ClusterView, NodeOptions, ObjectStoreNode};
    pub use crate::object::{NodeId, ObjectId, ObjectStatus};
    pub use crate::protocol::{
        ClientOp, ClientReply, ConfirmKind, DirOp, Effect, Message, OpId, QueryResult,
        ReduceInstruction, ShardSnapshot, SnapshotEntry, TimerToken,
    };
    pub use crate::reduce::{DType, DegreeModel, ReduceOp, ReduceSpec, ReduceTreePlan, TreeShape};
    pub use crate::store::LocalStore;
    pub use crate::time::{Duration, Time};
}

pub use prelude::*;
