//! SWIM-style gossip failure detector (decentralized liveness, §3.5 companion).
//!
//! [`MembershipView`](crate::membership::MembershipView) arbitrates *evidence* of
//! deaths and restarts but is deliberately dumb about *detection*. Until now the
//! only detectors were drivers with god's-eye views: the simulator's fault
//! schedule and `hoplitectl`'s explicit `peer-failed` verdicts. This module adds
//! the missing decentralized detector in the same sans-IO style: a pure,
//! tick-driven state machine that each node runs against its own clock.
//!
//! The protocol is SWIM (Das, Gupta, Motivala 2002) with the incarnation
//! refinement from Lifeguard-era practice:
//!
//! * every probe period the node pings one peer, walking a shuffled ring so
//!   probing is round-robin-random (every peer probed once per cycle);
//! * a missed direct ack escalates to `k` indirect **ping-req**s through random
//!   relays before the peer is moved to **Suspect**;
//! * a Suspect peer that stays silent for the suspicion window is declared
//!   **Dead** — the verdict feeds the exact same failure path a supervisor
//!   notice would;
//! * a suspected-but-alive node *refutes* by bumping its incarnation and
//!   gossiping the newer liveness claim; `MembershipView::note_alive` already
//!   arbitrates that correctly because death is sticky per incarnation.
//!
//! Dissemination is epidemic: every `Ping`/`Ack`/`PingReq` piggybacks a bounded
//! digest of recent membership claims (`(node, incarnation, state)` triples),
//! each retransmitted a logarithmic number of times. Two entries are
//! prioritized on every message: the sender's own alive claim, and whatever the
//! sender believes about the *destination* — so a suspected node always learns
//! of its suspicion from the next message it receives and can refute in time.
//!
//! The detector never touches the membership view itself. It emits
//! [`DetectorAction`]s; the node facade translates them into wire messages and
//! feeds confirmed verdicts through `MembershipView` + the §3.5 failure rules.
//! The override rules here mirror the view's arbitration exactly:
//! `Alive{i}` beats `Suspect{j}`/`Dead{j}` iff `i > j`; `Suspect{i}` beats
//! `Alive{j}` iff `i >= j`; `Dead{i}` beats anything with `j <= i` and is
//! sticky within an incarnation.

use crate::object::NodeId;
use crate::time::{Duration, Time};

/// Tuning knobs for the failure detector.
///
/// The detector is **off by default**: `HopliteConfig::detector` is `None`, so
/// existing drivers, sweeps, and sims are bit-for-bit unaffected unless a
/// config opts in.
#[derive(Clone, Debug, PartialEq)]
pub struct DetectorConfig {
    /// How often a node starts a new probe round (one peer pinged per round).
    pub probe_period: Duration,
    /// How long to wait for a direct ack before escalating to indirect
    /// ping-reqs, and again for the indirect acks before suspecting.
    pub ack_timeout: Duration,
    /// Suspicion window as a multiple of `probe_period`: a Suspect peer that
    /// has not refuted after `probe_period * suspicion_multiplier` is declared
    /// dead.
    pub suspicion_multiplier: u32,
    /// Number of relays asked to ping the target indirectly after a missed
    /// direct ack.
    pub indirect_fanout: usize,
    /// Maximum gossip entries piggybacked on one Ping/Ack/PingReq.
    pub gossip_budget: usize,
}

impl Default for DetectorConfig {
    fn default() -> DetectorConfig {
        DetectorConfig {
            probe_period: Duration::from_millis(200),
            ack_timeout: Duration::from_millis(60),
            suspicion_multiplier: 15,
            indirect_fanout: 3,
            gossip_budget: 6,
        }
    }
}

impl DetectorConfig {
    /// The suspicion window: how long a Suspect peer gets to refute before it
    /// is declared dead.
    pub fn suspicion_window(&self) -> Duration {
        self.probe_period.mul(u64::from(self.suspicion_multiplier))
    }
}

/// Liveness claim carried by a gossip entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GossipState {
    /// The incarnation is believed alive.
    Alive,
    /// The incarnation missed probes and is in its suspicion window.
    Suspect,
    /// The incarnation has been declared dead (sticky: only a newer
    /// incarnation can revive the node).
    Dead,
}

impl GossipState {
    /// Wire encoding (stable: used by the framing layer).
    pub fn to_wire(self) -> u8 {
        match self {
            GossipState::Alive => 0,
            GossipState::Suspect => 1,
            GossipState::Dead => 2,
        }
    }

    /// Decode the wire byte; `None` for anything unknown.
    pub fn from_wire(b: u8) -> Option<GossipState> {
        match b {
            0 => Some(GossipState::Alive),
            1 => Some(GossipState::Suspect),
            2 => Some(GossipState::Dead),
            _ => None,
        }
    }
}

/// One piggybacked membership claim: `(node, incarnation, state)`.
pub type GossipEntry = (NodeId, u64, GossipState);

/// What the detector wants the driver/node to do after a tick.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DetectorAction {
    /// Send a direct probe to `to`.
    Ping {
        /// Probe target.
        to: NodeId,
        /// Correlates the eventual ack with this probe round.
        probe_id: u64,
    },
    /// Ask `relay` to ping `target` on our behalf (indirect probe).
    PingReq {
        /// The intermediary asked to forward the probe.
        relay: NodeId,
        /// The unresponsive peer the relay should ping.
        target: NodeId,
        /// Same correlation id as the failed direct probe.
        probe_id: u64,
    },
    /// `node` (at `incarnation`) missed direct + indirect probes and entered
    /// its suspicion window.
    Suspect {
        /// The newly suspected peer.
        node: NodeId,
        /// The incarnation under suspicion.
        incarnation: u64,
    },
    /// `node` (at `incarnation`) stayed Suspect for the whole window: declare
    /// it dead and run the failure rules.
    Dead {
        /// The peer to declare dead.
        node: NodeId,
        /// The incarnation being declared dead.
        incarnation: u64,
    },
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ProbePhase {
    Direct,
    Indirect,
}

#[derive(Clone, Copy, Debug)]
struct Outstanding {
    target: NodeId,
    probe_id: u64,
    phase: ProbePhase,
    deadline: Time,
}

#[derive(Clone, Copy, Debug)]
struct PeerState {
    incarnation: u64,
    state: GossipState,
    /// Valid only while `state == Suspect`.
    suspect_expires: Time,
}

#[derive(Clone, Copy, Debug)]
struct QueuedEntry {
    node: NodeId,
    sends_left: u32,
}

/// The per-node SWIM failure detector. Pure state machine: the driver calls
/// [`tick`](FailureDetector::tick) whenever the timer it armed for
/// [`next_wake`](FailureDetector::next_wake) fires, forwards acks and gossip
/// observations, and executes the returned [`DetectorAction`]s.
#[derive(Clone, Debug)]
pub struct FailureDetector {
    me: NodeId,
    cfg: DetectorConfig,
    rng: u64,
    ring: Vec<NodeId>,
    ring_pos: usize,
    next_probe_at: Time,
    next_probe_id: u64,
    outstanding: Option<Outstanding>,
    states: Vec<PeerState>,
    queue: Vec<QueuedEntry>,
    retransmit_limit: u32,
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn ceil_log2(n: usize) -> u32 {
    usize::BITS - n.saturating_sub(1).leading_zeros()
}

impl FailureDetector {
    /// A detector for a cluster of `n` nodes, run by `me`. `seed` makes ring
    /// shuffles and relay choices deterministic per node (drivers derive it
    /// from the node id). The first probe fires one `probe_period` after
    /// `start`.
    pub fn new(
        me: NodeId,
        n: usize,
        cfg: DetectorConfig,
        seed: u64,
        start: Time,
    ) -> FailureDetector {
        let mut det = FailureDetector {
            me,
            retransmit_limit: 3 * ceil_log2(n.max(2)) + 3,
            next_probe_at: start + cfg.probe_period,
            cfg,
            rng: seed ^ 0xD6E8_FEB8_6659_FD93,
            ring: (0..n as u32).map(NodeId).filter(|&p| p != me).collect(),
            ring_pos: 0,
            next_probe_id: 0,
            outstanding: None,
            states: vec![
                PeerState {
                    incarnation: 0,
                    state: GossipState::Alive,
                    suspect_expires: Time::ZERO,
                };
                n
            ],
            queue: Vec::new(),
        };
        det.reshuffle();
        det
    }

    fn reshuffle(&mut self) {
        for i in (1..self.ring.len()).rev() {
            let j = (splitmix(&mut self.rng) % (i as u64 + 1)) as usize;
            self.ring.swap(i, j);
        }
    }

    fn enqueue(&mut self, node: NodeId) {
        self.queue.retain(|q| q.node != node);
        self.queue.push(QueuedEntry { node, sends_left: self.retransmit_limit });
    }

    /// Our current belief about `node`: `(incarnation, state)`.
    pub fn peer_state(&self, node: NodeId) -> (u64, GossipState) {
        let s = &self.states[node.0 as usize];
        (s.incarnation, s.state)
    }

    /// When the driver should next call [`tick`](FailureDetector::tick): the
    /// earliest of the next probe round, the outstanding probe's ack deadline,
    /// and the nearest suspicion expiry.
    pub fn next_wake(&self, _now: Time) -> Time {
        let mut wake = self.next_probe_at;
        if let Some(o) = &self.outstanding {
            wake = wake.min(o.deadline);
        }
        for s in &self.states {
            if s.state == GossipState::Suspect {
                wake = wake.min(s.suspect_expires);
            }
        }
        wake
    }

    fn next_target(&mut self) -> Option<NodeId> {
        for _ in 0..self.ring.len() {
            if self.ring_pos >= self.ring.len() {
                self.ring_pos = 0;
                self.reshuffle();
            }
            let cand = self.ring[self.ring_pos];
            self.ring_pos += 1;
            if self.states[cand.0 as usize].state != GossipState::Dead {
                return Some(cand);
            }
        }
        None
    }

    fn pick_relays(&mut self, target: NodeId) -> Vec<NodeId> {
        let mut candidates: Vec<NodeId> = (0..self.states.len() as u32)
            .map(NodeId)
            .filter(|&p| {
                p != self.me && p != target && self.states[p.0 as usize].state != GossipState::Dead
            })
            .collect();
        for i in (1..candidates.len()).rev() {
            let j = (splitmix(&mut self.rng) % (i as u64 + 1)) as usize;
            candidates.swap(i, j);
        }
        candidates.truncate(self.cfg.indirect_fanout);
        candidates
    }

    fn start_suspicion(&mut self, target: NodeId, now: Time, out: &mut Vec<DetectorAction>) {
        let window = self.cfg.suspicion_window();
        let s = &mut self.states[target.0 as usize];
        if s.state != GossipState::Alive {
            return;
        }
        s.state = GossipState::Suspect;
        s.suspect_expires = now + window;
        let incarnation = s.incarnation;
        self.enqueue(target);
        out.push(DetectorAction::Suspect { node: target, incarnation });
    }

    /// Advance the state machine to `now`. Escalates or abandons the
    /// outstanding probe, expires suspicion windows into death verdicts, and
    /// starts the next probe round when due.
    pub fn tick(&mut self, now: Time, out: &mut Vec<DetectorAction>) {
        if let Some(o) = self.outstanding {
            if now >= o.deadline {
                match o.phase {
                    ProbePhase::Direct => {
                        let relays = self.pick_relays(o.target);
                        if relays.is_empty() {
                            self.start_suspicion(o.target, now, out);
                            self.outstanding = None;
                        } else {
                            for relay in relays {
                                out.push(DetectorAction::PingReq {
                                    relay,
                                    target: o.target,
                                    probe_id: o.probe_id,
                                });
                            }
                            self.outstanding = Some(Outstanding {
                                phase: ProbePhase::Indirect,
                                deadline: o.deadline + self.cfg.ack_timeout,
                                ..o
                            });
                        }
                    }
                    ProbePhase::Indirect => {
                        self.start_suspicion(o.target, now, out);
                        self.outstanding = None;
                    }
                }
            }
        }

        for idx in 0..self.states.len() {
            let s = self.states[idx];
            if s.state == GossipState::Suspect && now >= s.suspect_expires {
                let node = NodeId(idx as u32);
                self.states[idx].state = GossipState::Dead;
                self.enqueue(node);
                out.push(DetectorAction::Dead { node, incarnation: s.incarnation });
            }
        }

        if now >= self.next_probe_at {
            self.next_probe_at = now + self.cfg.probe_period;
            if self.outstanding.is_none() {
                if let Some(target) = self.next_target() {
                    self.next_probe_id += 1;
                    let probe_id = self.next_probe_id;
                    self.outstanding = Some(Outstanding {
                        target,
                        probe_id,
                        phase: ProbePhase::Direct,
                        deadline: now + self.cfg.ack_timeout,
                    });
                    out.push(DetectorAction::Ping { to: target, probe_id });
                }
            }
        }
    }

    /// An ack for `probe_id` arrived (directly or via a relay): the probe
    /// round succeeded. Note that per strict SWIM rules an ack does **not**
    /// clear an existing suspicion — only a higher-incarnation alive claim
    /// (the refutation) does.
    pub fn on_ack(&mut self, probe_id: u64) {
        if let Some(o) = &self.outstanding {
            if o.probe_id == probe_id {
                self.outstanding = None;
            }
        }
    }

    /// Fold in an alive claim for `(node, incarnation)` (from gossip, `Hello`,
    /// `DirResynced`, or a digest). Clears Suspect/Dead only when the claim
    /// names a strictly newer incarnation. Returns `true` if the belief
    /// changed (and was queued for further gossip).
    pub fn observe_alive(&mut self, node: NodeId, incarnation: u64) -> bool {
        if node == self.me {
            return false;
        }
        let s = &mut self.states[node.0 as usize];
        if incarnation > s.incarnation {
            s.incarnation = incarnation;
            s.state = GossipState::Alive;
            self.enqueue(node);
            return true;
        }
        false
    }

    /// Fold in a gossiped suspicion of `(node, incarnation)`. Suspicion beats
    /// an alive claim at the *same* incarnation (that is what forces the
    /// refutation bump) but never un-kills a dead incarnation. Each node runs
    /// its own suspicion window from when it first learns of the suspicion.
    /// Returns `true` if `node` newly entered Suspect here.
    pub fn observe_suspect(&mut self, node: NodeId, incarnation: u64, now: Time) -> bool {
        if node == self.me {
            return false;
        }
        let window = self.cfg.suspicion_window();
        let s = &mut self.states[node.0 as usize];
        match s.state {
            GossipState::Alive => {
                if incarnation >= s.incarnation {
                    s.incarnation = incarnation;
                    s.state = GossipState::Suspect;
                    s.suspect_expires = now + window;
                    self.enqueue(node);
                    return true;
                }
            }
            GossipState::Suspect => {
                if incarnation > s.incarnation {
                    s.incarnation = incarnation;
                    s.suspect_expires = now + window;
                    self.enqueue(node);
                }
            }
            GossipState::Dead => {
                // Death is sticky within an incarnation: only a suspicion of a
                // strictly newer incarnation (restarted, then went quiet) can
                // move a Dead entry back to Suspect.
                if incarnation > s.incarnation {
                    s.incarnation = incarnation;
                    s.state = GossipState::Suspect;
                    s.suspect_expires = now + window;
                    self.enqueue(node);
                    return true;
                }
            }
        }
        false
    }

    /// Fold in a death claim for `(node, incarnation)`. Returns `true` if this
    /// was news (the node was not already Dead at this or a newer
    /// incarnation).
    pub fn observe_dead(&mut self, node: NodeId, incarnation: u64) -> bool {
        if node == self.me {
            return false;
        }
        let s = &mut self.states[node.0 as usize];
        if s.state == GossipState::Dead {
            if incarnation > s.incarnation {
                s.incarnation = incarnation;
                self.enqueue(node);
            }
            return false;
        }
        if incarnation >= s.incarnation {
            s.incarnation = incarnation;
            s.state = GossipState::Dead;
            self.enqueue(node);
            return true;
        }
        false
    }

    /// The bounded gossip digest to piggyback on a message to `dest`. Always
    /// leads with our own alive claim (`self_incarnation` comes from the
    /// membership view, the sole authority on it), then whatever we believe
    /// about `dest` if it is under suspicion or dead — guaranteeing a
    /// suspected destination hears about it and can refute — then drains the
    /// retransmit queue round-robin up to the budget.
    pub fn piggyback(&mut self, dest: NodeId, self_incarnation: u64) -> Vec<GossipEntry> {
        let cap = self.cfg.gossip_budget.max(2);
        let mut out: Vec<GossipEntry> = vec![(self.me, self_incarnation, GossipState::Alive)];
        if dest != self.me {
            let d = &self.states[dest.0 as usize];
            if d.state != GossipState::Alive {
                out.push((dest, d.incarnation, d.state));
            }
        }
        for _ in 0..self.queue.len() {
            if out.len() >= cap {
                break;
            }
            let mut q = self.queue.remove(0);
            if q.node == self.me || out.iter().any(|&(n, _, _)| n == q.node) {
                self.queue.push(q);
                continue;
            }
            let s = &self.states[q.node.0 as usize];
            out.push((q.node, s.incarnation, s.state));
            q.sends_left -= 1;
            if q.sends_left > 0 {
                self.queue.push(q);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DetectorConfig {
        DetectorConfig {
            probe_period: Duration::from_millis(100),
            ack_timeout: Duration::from_millis(30),
            suspicion_multiplier: 5, // 500ms window
            indirect_fanout: 2,
            gossip_budget: 4,
        }
    }

    fn det(n: usize) -> FailureDetector {
        FailureDetector::new(NodeId(0), n, cfg(), 42, Time::ZERO)
    }

    /// Step to the next wake-up and tick, returning (now, actions).
    fn step(d: &mut FailureDetector, now: Time) -> (Time, Vec<DetectorAction>) {
        let now = d.next_wake(now);
        let mut out = Vec::new();
        d.tick(now, &mut out);
        (now, out)
    }

    #[test]
    fn ring_probes_cover_all_peers_before_repeating() {
        let mut d = det(6);
        let mut now = Time::ZERO;
        for _cycle in 0..3 {
            let mut seen = Vec::new();
            while seen.len() < 5 {
                let (t, actions) = step(&mut d, now);
                now = t;
                for a in actions {
                    if let DetectorAction::Ping { to, probe_id } = a {
                        assert!(!seen.contains(&to), "peer {to:?} probed twice in one cycle");
                        seen.push(to);
                        d.on_ack(probe_id);
                    }
                }
            }
            seen.sort_by_key(|n| n.0);
            assert_eq!(seen, (1..6).map(NodeId).collect::<Vec<_>>());
        }
    }

    #[test]
    fn missed_ack_escalates_then_suspects_then_declares_dead() {
        let mut d = det(4);
        let mut now = Time::ZERO;
        let mut pings = 0;
        let mut ping_reqs = Vec::new();
        let mut suspected_at = None;
        let mut dead_at = None;
        let mut target = None;
        while dead_at.is_none() {
            let (t, actions) = step(&mut d, now);
            now = t;
            for a in actions {
                match a {
                    DetectorAction::Ping { to, .. } => {
                        if target.is_none() {
                            target = Some(to);
                        }
                        // Suspect peers keep being probed (that is how they learn of
                        // the suspicion); count only the pre-suspicion direct probe.
                        if Some(to) == target && suspected_at.is_none() {
                            pings += 1;
                        }
                        // Never ack: every probe times out.
                    }
                    DetectorAction::PingReq { relay, target: t2, .. } => {
                        if Some(t2) == target && suspected_at.is_none() {
                            ping_reqs.push(relay);
                        }
                    }
                    DetectorAction::Suspect { node, incarnation } => {
                        if Some(node) == target {
                            assert_eq!(incarnation, 0);
                            suspected_at = Some(now);
                        }
                    }
                    DetectorAction::Dead { node, incarnation } => {
                        if Some(node) == target {
                            assert_eq!(incarnation, 0);
                            dead_at = Some(now);
                        }
                    }
                }
            }
        }
        assert_eq!(pings, 1, "one direct probe per round");
        assert_eq!(ping_reqs.len(), 2, "indirect_fanout relays tried");
        assert!(!ping_reqs.contains(&NodeId(0)) && !ping_reqs.contains(&target.unwrap()));
        let window = cfg().suspicion_window();
        assert_eq!(dead_at.unwrap(), suspected_at.unwrap() + window);
        assert_eq!(d.peer_state(target.unwrap()), (0, GossipState::Dead));
    }

    #[test]
    fn timely_ack_prevents_escalation() {
        let mut d = det(4);
        let mut now = Time::ZERO;
        for _ in 0..20 {
            let (t, actions) = step(&mut d, now);
            now = t;
            for a in actions {
                match a {
                    DetectorAction::Ping { probe_id, .. } => d.on_ack(probe_id),
                    DetectorAction::PingReq { .. } => panic!("escalated despite timely acks"),
                    DetectorAction::Suspect { .. } | DetectorAction::Dead { .. } => {
                        panic!("suspected despite timely acks")
                    }
                }
            }
        }
    }

    #[test]
    fn dead_never_regresses_within_an_incarnation() {
        // Property sweep: after Dead{i}, no Suspect/Alive claim at j <= i may
        // change the state; only Alive{j > i} revives.
        let mut rng = 7u64;
        for _case in 0..200 {
            let mut d = det(4);
            let node = NodeId(1 + (splitmix(&mut rng) % 3) as u32);
            let i = splitmix(&mut rng) % 5;
            d.observe_dead(node, i);
            assert_eq!(d.peer_state(node), (i, GossipState::Dead));
            for _op in 0..10 {
                let j = splitmix(&mut rng) % (i + 1);
                if splitmix(&mut rng).is_multiple_of(2) {
                    assert!(!d.observe_suspect(node, j, Time::ZERO));
                } else {
                    assert!(!d.observe_alive(node, j));
                }
                assert_eq!(d.peer_state(node), (i, GossipState::Dead), "regressed from Dead");
            }
            assert!(d.observe_alive(node, i + 1));
            assert_eq!(d.peer_state(node), (i + 1, GossipState::Alive));
        }
    }

    #[test]
    fn suspicion_beats_same_incarnation_alive_and_is_cleared_by_refutation() {
        let mut d = det(4);
        assert!(d.observe_suspect(NodeId(2), 0, Time::ZERO));
        // An alive claim at the same incarnation is NOT a refutation.
        assert!(!d.observe_alive(NodeId(2), 0));
        assert_eq!(d.peer_state(NodeId(2)), (0, GossipState::Suspect));
        // The incarnation bump is.
        assert!(d.observe_alive(NodeId(2), 1));
        assert_eq!(d.peer_state(NodeId(2)), (1, GossipState::Alive));
        // With the suspicion refuted, the window never expires into a death.
        let mut out = Vec::new();
        d.tick(Time::ZERO + Duration::from_secs(10), &mut out);
        assert!(!out.iter().any(|a| matches!(a, DetectorAction::Dead { .. })));
    }

    #[test]
    fn unrefuted_gossip_suspicion_expires_into_death() {
        let mut d = det(4);
        let t0 = Time::ZERO + Duration::from_millis(7);
        assert!(d.observe_suspect(NodeId(3), 0, t0));
        assert!(d.next_wake(t0) <= t0 + cfg().suspicion_window());
        let mut out = Vec::new();
        d.tick(t0 + cfg().suspicion_window(), &mut out);
        assert!(out.contains(&DetectorAction::Dead { node: NodeId(3), incarnation: 0 }));
    }

    #[test]
    fn piggyback_is_bounded_and_prioritizes_self_and_dest() {
        let mut d = det(16);
        for i in 2..12 {
            d.observe_dead(NodeId(i), 0);
        }
        d.observe_suspect(NodeId(1), 0, Time::ZERO);
        let g = d.piggyback(NodeId(1), 9);
        assert!(g.len() <= cfg().gossip_budget, "budget exceeded: {g:?}");
        assert_eq!(g[0], (NodeId(0), 9, GossipState::Alive), "self claim leads");
        assert_eq!(g[1], (NodeId(1), 0, GossipState::Suspect), "dest told of its suspicion");
        // No duplicates within one digest.
        for (i, &(n, _, _)) in g.iter().enumerate() {
            assert!(!g[i + 1..].iter().any(|&(m, _, _)| m == n));
        }
    }

    #[test]
    fn gossip_queue_rotates_and_retransmits_a_bounded_number_of_times() {
        let mut d = det(8);
        d.observe_dead(NodeId(5), 0);
        let mut carried = 0;
        // Drain far past the retransmit limit; the entry must stop appearing.
        for _ in 0..200 {
            if d.piggyback(NodeId(1), 0).iter().any(|&(n, _, _)| n == NodeId(5)) {
                carried += 1;
            }
        }
        let limit = 3 * ceil_log2(8) + 3;
        assert_eq!(carried, limit, "entry retransmitted exactly `limit` times");
    }

    #[test]
    fn gossip_converges_over_a_lossy_ring() {
        // 8 detectors; node 0 learns of node 7's death. Each round every node
        // sends one digest to a random peer; 30% of messages are lost. All
        // surviving nodes must still converge on the death well within the
        // retransmit budget.
        let n = 8;
        let mut dets: Vec<FailureDetector> = (0..n)
            .map(|i| FailureDetector::new(NodeId(i as u32), n, cfg(), 1000 + i as u64, Time::ZERO))
            .collect();
        dets[0].observe_dead(NodeId(7), 0);
        let mut rng = 99u64;
        for _round in 0..40 {
            for i in 0..n - 1 {
                let dest = NodeId((splitmix(&mut rng) % (n as u64 - 1)) as u32);
                let digest = dets[i].piggyback(dest, 0);
                if splitmix(&mut rng) % 10 < 3 {
                    continue; // lost
                }
                for (node, inc, state) in digest {
                    match state {
                        GossipState::Alive => {
                            dets[dest.0 as usize].observe_alive(node, inc);
                        }
                        GossipState::Suspect => {
                            dets[dest.0 as usize].observe_suspect(node, inc, Time::ZERO);
                        }
                        GossipState::Dead => {
                            dets[dest.0 as usize].observe_dead(node, inc);
                        }
                    }
                }
            }
        }
        for (i, d) in dets.iter().take(n - 1).enumerate() {
            assert_eq!(
                d.peer_state(NodeId(7)).1,
                GossipState::Dead,
                "node {i} never learned of the death"
            );
        }
    }

    #[test]
    fn two_node_cluster_skips_indirect_phase() {
        // With no possible relays the direct timeout suspects immediately.
        let mut d = det(2);
        let mut now = Time::ZERO;
        let mut saw_suspect = false;
        for _ in 0..6 {
            let (t, actions) = step(&mut d, now);
            now = t;
            for a in &actions {
                assert!(!matches!(a, DetectorAction::PingReq { .. }));
                if matches!(a, DetectorAction::Suspect { node: NodeId(1), .. }) {
                    saw_suspect = true;
                }
            }
            if saw_suspect {
                break;
            }
        }
        assert!(saw_suspect);
    }

    #[test]
    fn dead_peers_are_not_probed() {
        let mut d = det(4);
        d.observe_dead(NodeId(1), 0);
        d.observe_dead(NodeId(2), 0);
        let mut now = Time::ZERO;
        for _ in 0..12 {
            let (t, actions) = step(&mut d, now);
            now = t;
            for a in actions {
                if let DetectorAction::Ping { to, probe_id } = a {
                    assert_eq!(to, NodeId(3), "probed a dead peer");
                    d.on_ack(probe_id);
                }
            }
        }
    }
}
