//! Per-node counters used by tests, benchmarks and the experiment harness.

/// Monotonic counters maintained by an [`crate::node::ObjectStoreNode`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NodeMetrics {
    /// Protocol messages sent.
    pub messages_sent: u64,
    /// Bytes of payload sent on the data plane (pull blocks + reduce blocks).
    pub data_bytes_sent: u64,
    /// Bytes of payload received on the data plane.
    pub data_bytes_received: u64,
    /// Objects created locally via `Put`.
    pub objects_put: u64,
    /// `Get` operations completed for local clients.
    pub gets_completed: u64,
    /// Remote pull requests served (acting as a broadcast intermediate or origin).
    pub pulls_served: u64,
    /// Blocks forwarded as a reduce participant.
    pub reduce_blocks_sent: u64,
    /// Reduce operations coordinated by this node.
    pub reduces_coordinated: u64,
    /// Times this node re-queried the directory because a sender failed.
    pub broadcast_failovers: u64,
    /// Times this node re-issued an outstanding directory query because the shard's
    /// primary failed over to a backup replica.
    pub directory_failovers: u64,
    /// Journaled registrations/subscriptions re-driven at a new primary after a
    /// failover (only the genuinely-unacked window is re-driven; confirmed intents
    /// survive inside the replication layer).
    pub directory_redrives: u64,
    /// Directory shard snapshots this node installed while being re-admitted to a
    /// replica set (state transfer + log catch-up).
    pub directory_resyncs: u64,
    /// Times a reduce subtree on this node was cleared because of a failure.
    pub reduce_resets: u64,
    /// Directory queries answered by the shard hosted on this node.
    pub directory_queries_served: u64,
    /// Directory registrations processed by the shard hosted on this node.
    pub directory_registrations: u64,
    /// Inline (small-object) directory hits served by the shard hosted on this node.
    pub directory_inline_hits: u64,
    /// `DirReplicate` frames this node shipped (primary egress; one per backup in star
    /// fan-out, one per op under chain replication — plus relays at chain members).
    pub directory_replicates_sent: u64,
    /// Cumulative `DirAck`s this node folded and relayed *upstream* along a
    /// replication chain (tail → middle → primary). Zero under star fan-out, where
    /// every ack goes straight to the primary.
    pub chain_ack_depth: u64,
    /// Receive slabs checked out of a connection's [slab pool] that reused a retained
    /// allocation instead of allocating fresh (transport-level; folded in by harnesses
    /// that run nodes over the TCP fabric).
    pub recv_slab_reuse: u64,
    /// Small control frames that went out corked — batched with at least one other
    /// frame into a single vectored write (transport-level, like `recv_slab_reuse`).
    pub corked_frames_per_write: u64,
    /// `DirSnapshotChunk` frames this node served as a resync source. Chunked resync
    /// streams bounded frames interleaved with live traffic instead of one
    /// O(objects) `DirSnapshot` burst.
    pub snapshot_chunks_sent: u64,
    /// Bytes of shard state shipped in resync chunks served by this node.
    pub snapshot_bytes: u64,
    /// Resyncs this node served as a *delta* — the requester's gap was bridgeable
    /// from the retained log suffix, so ops were replayed instead of state shipped.
    pub delta_resyncs: u64,
    /// Inline small-object payloads evicted from this node's directory shards to
    /// keep the inline cache under `directory_inline_cache_bytes`.
    pub inline_evictions: u64,
    /// Directory leases reclaimed by bulk timer-wheel expiry on this node.
    pub leases_expired: u64,
    /// Failure notices dropped because they named an incarnation older than the
    /// highest this node has seen — late news about a process that already
    /// restarted (the notice must not re-kill or re-park the new incarnation).
    pub stale_failure_notices_dropped: u64,
    /// Peer deaths this node learned secondhand — from a resync membership digest
    /// or from a gossiped `Dead` claim — rather than declared by its own failure
    /// detector or a driver verdict.
    pub membership_deaths_learned: u64,
    /// Direct SWIM probes (`Ping` frames) this node sent, including pings
    /// forwarded on behalf of a `PingReq` relay request.
    pub probes_sent: u64,
    /// `PingReq` frames this node sent after a direct probe missed its ack (one
    /// per relay, so a single escalation counts `indirect_fanout` times).
    pub indirect_probes: u64,
    /// Peers this node moved to Suspect — by its own probe timeouts or by
    /// adopting a gossiped suspicion.
    pub suspicions_raised: u64,
    /// Times this node bumped its own incarnation to refute a suspicion (or
    /// premature death claim) about itself.
    pub refutations_sent: u64,
    /// Suspicion windows that expired on this node into a local death verdict.
    pub deaths_declared: u64,
    /// Gossip digest entries piggybacked on outgoing Ping/Ack/PingReq frames.
    pub gossip_entries_piggybacked: u64,
    /// Bytes currently live in the local object store (a gauge, sampled after every
    /// event; merging sums the per-node gauges into a cluster total).
    pub store_bytes_live: u64,
}

impl NodeMetrics {
    /// Every counter as a `(name, value)` pair, in declaration order. Harnesses that
    /// serialize metrics (the daemon status line, `hoplitectl status --json`) iterate
    /// this instead of hand-listing fields that would drift from the struct.
    pub fn fields(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("messages_sent", self.messages_sent),
            ("data_bytes_sent", self.data_bytes_sent),
            ("data_bytes_received", self.data_bytes_received),
            ("objects_put", self.objects_put),
            ("gets_completed", self.gets_completed),
            ("pulls_served", self.pulls_served),
            ("reduce_blocks_sent", self.reduce_blocks_sent),
            ("reduces_coordinated", self.reduces_coordinated),
            ("broadcast_failovers", self.broadcast_failovers),
            ("directory_failovers", self.directory_failovers),
            ("directory_redrives", self.directory_redrives),
            ("directory_resyncs", self.directory_resyncs),
            ("reduce_resets", self.reduce_resets),
            ("directory_queries_served", self.directory_queries_served),
            ("directory_registrations", self.directory_registrations),
            ("directory_inline_hits", self.directory_inline_hits),
            ("directory_replicates_sent", self.directory_replicates_sent),
            ("chain_ack_depth", self.chain_ack_depth),
            ("recv_slab_reuse", self.recv_slab_reuse),
            ("corked_frames_per_write", self.corked_frames_per_write),
            ("snapshot_chunks_sent", self.snapshot_chunks_sent),
            ("snapshot_bytes", self.snapshot_bytes),
            ("delta_resyncs", self.delta_resyncs),
            ("inline_evictions", self.inline_evictions),
            ("leases_expired", self.leases_expired),
            ("stale_failure_notices_dropped", self.stale_failure_notices_dropped),
            ("membership_deaths_learned", self.membership_deaths_learned),
            ("probes_sent", self.probes_sent),
            ("indirect_probes", self.indirect_probes),
            ("suspicions_raised", self.suspicions_raised),
            ("refutations_sent", self.refutations_sent),
            ("deaths_declared", self.deaths_declared),
            ("gossip_entries_piggybacked", self.gossip_entries_piggybacked),
            ("store_bytes_live", self.store_bytes_live),
        ]
    }

    /// Fold another node's metrics into this one (used to aggregate per-cluster stats).
    pub fn merge(&mut self, other: &NodeMetrics) {
        self.messages_sent += other.messages_sent;
        self.data_bytes_sent += other.data_bytes_sent;
        self.data_bytes_received += other.data_bytes_received;
        self.objects_put += other.objects_put;
        self.gets_completed += other.gets_completed;
        self.pulls_served += other.pulls_served;
        self.reduce_blocks_sent += other.reduce_blocks_sent;
        self.reduces_coordinated += other.reduces_coordinated;
        self.broadcast_failovers += other.broadcast_failovers;
        self.directory_failovers += other.directory_failovers;
        self.directory_redrives += other.directory_redrives;
        self.directory_resyncs += other.directory_resyncs;
        self.reduce_resets += other.reduce_resets;
        self.directory_queries_served += other.directory_queries_served;
        self.directory_registrations += other.directory_registrations;
        self.directory_inline_hits += other.directory_inline_hits;
        self.directory_replicates_sent += other.directory_replicates_sent;
        self.chain_ack_depth += other.chain_ack_depth;
        self.recv_slab_reuse += other.recv_slab_reuse;
        self.corked_frames_per_write += other.corked_frames_per_write;
        self.snapshot_chunks_sent += other.snapshot_chunks_sent;
        self.snapshot_bytes += other.snapshot_bytes;
        self.delta_resyncs += other.delta_resyncs;
        self.inline_evictions += other.inline_evictions;
        self.leases_expired += other.leases_expired;
        self.stale_failure_notices_dropped += other.stale_failure_notices_dropped;
        self.membership_deaths_learned += other.membership_deaths_learned;
        self.probes_sent += other.probes_sent;
        self.indirect_probes += other.indirect_probes;
        self.suspicions_raised += other.suspicions_raised;
        self.refutations_sent += other.refutations_sent;
        self.deaths_declared += other.deaths_declared;
        self.gossip_entries_piggybacked += other.gossip_entries_piggybacked;
        self.store_bytes_live += other.store_bytes_live;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_fields() {
        let mut a = NodeMetrics { messages_sent: 2, data_bytes_sent: 10, ..Default::default() };
        let b = NodeMetrics {
            messages_sent: 3,
            gets_completed: 1,
            chain_ack_depth: 4,
            recv_slab_reuse: 7,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.messages_sent, 5);
        assert_eq!(a.data_bytes_sent, 10);
        assert_eq!(a.gets_completed, 1);
        assert_eq!(a.chain_ack_depth, 4);
        assert_eq!(a.recv_slab_reuse, 7);
    }
}
