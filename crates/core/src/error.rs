//! Error types for the Hoplite core.

use std::fmt;

use crate::object::{NodeId, ObjectId};

/// Errors surfaced by the Hoplite core API and protocol state machines.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HopliteError {
    /// The object already exists in the local store (objects are immutable; `Put` on an
    /// existing id is a programming error).
    ObjectAlreadyExists(ObjectId),
    /// The object is not present locally and no remote location is known yet; only
    /// returned by non-blocking lookups (blocking `Get`s park until a location appears).
    ObjectNotFound(ObjectId),
    /// The object was deleted while an operation was in flight.
    ObjectDeleted(ObjectId),
    /// A reduce was requested over fewer available sources than `num_objects` and the
    /// remaining sources can no longer be produced (too many unrecoverable failures).
    NotEnoughReduceInputs {
        /// Reduce output object.
        target: ObjectId,
        /// Number of inputs requested.
        requested: usize,
        /// Number of inputs that can still be produced.
        available: usize,
    },
    /// Reduce inputs disagree on size or element type.
    ReduceShapeMismatch {
        /// Reduce output object.
        target: ObjectId,
        /// Detail message.
        detail: String,
    },
    /// The peer node failed and the operation could not be rescheduled.
    PeerFailed(NodeId),
    /// The local store ran out of memory and could not evict enough unpinned objects.
    OutOfMemory {
        /// Bytes requested.
        requested: u64,
        /// Store capacity.
        capacity: u64,
    },
    /// A protocol invariant was violated (bug or corrupted message).
    Protocol(String),
    /// Transport-level failure (only produced by real transports, never by the
    /// simulator).
    Transport(String),
    /// The operation timed out.
    Timeout(String),
}

impl fmt::Display for HopliteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HopliteError::ObjectAlreadyExists(id) => write!(f, "object {id:?} already exists"),
            HopliteError::ObjectNotFound(id) => write!(f, "object {id:?} not found"),
            HopliteError::ObjectDeleted(id) => write!(f, "object {id:?} was deleted"),
            HopliteError::NotEnoughReduceInputs { target, requested, available } => write!(
                f,
                "reduce {target:?} requested {requested} inputs but only {available} can be produced"
            ),
            HopliteError::ReduceShapeMismatch { target, detail } => {
                write!(f, "reduce {target:?} shape mismatch: {detail}")
            }
            HopliteError::PeerFailed(node) => write!(f, "peer {node} failed"),
            HopliteError::OutOfMemory { requested, capacity } => {
                write!(f, "out of memory: requested {requested} bytes, capacity {capacity}")
            }
            HopliteError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            HopliteError::Transport(msg) => write!(f, "transport error: {msg}"),
            HopliteError::Timeout(msg) => write!(f, "timeout: {msg}"),
        }
    }
}

impl std::error::Error for HopliteError {}

/// Convenience result alias used across the workspace.
pub type Result<T> = std::result::Result<T, HopliteError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_key_fields() {
        let id = ObjectId::from_name("x");
        let err = HopliteError::NotEnoughReduceInputs { target: id, requested: 6, available: 3 };
        let text = err.to_string();
        assert!(text.contains('6') && text.contains('3'));

        let err = HopliteError::OutOfMemory { requested: 10, capacity: 5 };
        assert!(err.to_string().contains("10"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(HopliteError::PeerFailed(NodeId(1)), HopliteError::PeerFailed(NodeId(1)));
        assert_ne!(HopliteError::PeerFailed(NodeId(1)), HopliteError::PeerFailed(NodeId(2)));
    }
}
