//! Per-node incarnation-numbered membership view.
//!
//! Every node tracks, for every peer, the highest **incarnation** it has heard of
//! and whether that incarnation is believed alive. An incarnation is bumped each
//! time a process restarts, so liveness evidence is totally ordered per node:
//!
//! * a failure notice for an *older* incarnation than the one we know is stale and
//!   must be dropped — otherwise a late notice could re-kill (and park as
//!   "resyncing" forever) a node that already restarted and resynced;
//! * death is *sticky within an incarnation*: once incarnation `k` of a node is
//!   recorded dead, only evidence for an incarnation `> k` can mark it alive again;
//! * a restarted node knows nothing about failures it slept through, so rejoin
//!   messages carry a **membership digest** (`(node, incarnation, alive)` triples).
//!   The resync source merges the requester's digest and replies with every entry
//!   it knows *strictly newer*, teaching the restarted node the deaths it missed in
//!   its first gossip round.
//!
//! The view is deliberately dumb about *detection* — drivers (socket liveness, the
//! simulator's fault schedule, `hoplitectl`) decide when a peer is dead. The view
//! only arbitrates conflicting or stale evidence.

use crate::object::NodeId;

/// One digest entry: the highest incarnation known for `node` and whether that
/// incarnation is believed alive.
pub type MemberDigestEntry = (NodeId, u64, bool);

/// Verdict on a failure notice for `(node, incarnation)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureVerdict {
    /// First death evidence for a live incarnation: apply the §3.5 failure rules.
    Apply,
    /// The incarnation (or a newer one) is already recorded dead; nothing to redo.
    AlreadyDead,
    /// The notice concerns an incarnation older than the one we know — a late
    /// notice about a process that already restarted. Must be dropped.
    Stale,
}

/// Verdict on liveness evidence for `(node, incarnation)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AliveVerdict {
    /// The evidence names a strictly newer incarnation: the node restarted.
    /// `was_alive` reports whether we believed the *previous* incarnation alive
    /// (true means we slept through its death and should fold an implied failure
    /// before re-admitting the new incarnation).
    Superseded {
        /// Whether the superseded incarnation was still believed alive.
        was_alive: bool,
    },
    /// Matches what we already believe: the incarnation we know, alive.
    Known,
    /// Evidence for an incarnation we have already seen die, or older than the
    /// one we know. Dropped.
    Stale,
}

/// Outcome of merging a remote membership digest.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DigestOutcome {
    /// Peers we believed alive that the digest proves dead (at an incarnation at
    /// least as new as ours): the caller must run the failure rules for each.
    pub new_deaths: Vec<NodeId>,
    /// Peers we believed dead that the digest proves restarted (alive at a newer
    /// incarnation): the caller should fold them in as recovering.
    pub revived: Vec<NodeId>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct MemberState {
    incarnation: u64,
    alive: bool,
}

/// The membership view owned by one node. Indexed by `NodeId`.
#[derive(Clone, Debug)]
pub struct MembershipView {
    me: NodeId,
    entries: Vec<MemberState>,
}

impl MembershipView {
    /// A fresh view: every node alive at incarnation 0, except this node itself,
    /// which starts at `self_incarnation` (0 on cold boot, `k+1` after the k-th
    /// process restart — assigned by whoever restarts the process).
    pub fn new(me: NodeId, n: usize, self_incarnation: u64) -> MembershipView {
        let mut entries = vec![MemberState { incarnation: 0, alive: true }; n];
        if let Some(e) = entries.get_mut(me.0 as usize) {
            e.incarnation = self_incarnation;
        }
        MembershipView { me, entries }
    }

    /// This node's own incarnation.
    pub fn self_incarnation(&self) -> u64 {
        self.entries[self.me.0 as usize].incarnation
    }

    /// The highest incarnation known for `node`.
    pub fn incarnation_of(&self, node: NodeId) -> u64 {
        self.entries[node.0 as usize].incarnation
    }

    /// Whether the highest known incarnation of `node` is believed alive.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.entries[node.0 as usize].alive
    }

    /// Arbitrate a failure notice for `(node, incarnation)`.
    pub fn note_failure(&mut self, node: NodeId, incarnation: u64) -> FailureVerdict {
        if node == self.me {
            // Nobody outranks a node about its own current life.
            return FailureVerdict::Stale;
        }
        let e = &mut self.entries[node.0 as usize];
        if incarnation < e.incarnation {
            return FailureVerdict::Stale;
        }
        let was_alive = e.alive;
        e.incarnation = incarnation;
        e.alive = false;
        if was_alive {
            FailureVerdict::Apply
        } else {
            FailureVerdict::AlreadyDead
        }
    }

    /// A driver-level failure notice (no incarnation on the event): applies to the
    /// incarnation we currently know.
    pub fn note_driver_failure(&mut self, node: NodeId) -> FailureVerdict {
        let current = self.entries[node.0 as usize].incarnation;
        self.note_failure(node, current)
    }

    /// Arbitrate liveness evidence (`Hello`, `DirResynced`, a digest entry) for
    /// `(node, incarnation)`.
    pub fn note_alive(&mut self, node: NodeId, incarnation: u64) -> AliveVerdict {
        if node == self.me {
            return AliveVerdict::Known;
        }
        let e = &mut self.entries[node.0 as usize];
        if incarnation > e.incarnation {
            let was_alive = e.alive;
            e.incarnation = incarnation;
            e.alive = true;
            AliveVerdict::Superseded { was_alive }
        } else if incarnation == e.incarnation && e.alive {
            AliveVerdict::Known
        } else {
            // Equal incarnation but recorded dead (death is sticky per
            // incarnation), or an older incarnation altogether.
            AliveVerdict::Stale
        }
    }

    /// A driver-level recovery notice (no incarnation on the event): if the peer
    /// was dead, bump to the next incarnation — mirroring the `+1` the restarting
    /// side assigns — and return it. Idempotent: a peer already believed alive is
    /// left untouched (`None`).
    pub fn note_driver_recovery(&mut self, node: NodeId) -> Option<u64> {
        if node == self.me {
            return None;
        }
        let e = &mut self.entries[node.0 as usize];
        if e.alive {
            return None;
        }
        e.incarnation += 1;
        e.alive = true;
        Some(e.incarnation)
    }

    /// Refute a suspicion (or premature death claim) about this node itself:
    /// bump our incarnation past the claimed evidence so the resulting alive
    /// claim supersedes it everywhere, and return the new incarnation. This is
    /// the SWIM refutation — the only way a Suspect entry clears, since plain
    /// acks at the same incarnation are not accepted as proof of life.
    pub fn refute(&mut self, evidence_incarnation: u64) -> u64 {
        let e = &mut self.entries[self.me.0 as usize];
        e.incarnation = e.incarnation.max(evidence_incarnation) + 1;
        e.alive = true;
        e.incarnation
    }

    /// The full digest: one `(node, incarnation, alive)` triple per cluster node.
    pub fn digest(&self) -> Vec<MemberDigestEntry> {
        self.entries
            .iter()
            .enumerate()
            .map(|(i, e)| (NodeId(i as u32), e.incarnation, e.alive))
            .collect()
    }

    /// Every local entry *strictly newer* than the corresponding entry of a remote
    /// digest: higher incarnation, or same incarnation where we know a death the
    /// remote does not. This is what a resync source sends back to a restarted
    /// requester so its first gossip round learns the deaths it slept through.
    pub fn newer_than(&self, remote: &[MemberDigestEntry]) -> Vec<MemberDigestEntry> {
        self.digest()
            .into_iter()
            .filter(|&(node, inc, alive)| {
                match remote.iter().find(|(n, _, _)| *n == node) {
                    Some(&(_, rinc, ralive)) => inc > rinc || (inc == rinc && !alive && ralive),
                    // Unknown to the remote: everything we have is news.
                    None => true,
                }
            })
            .collect()
    }

    /// Merge a remote digest: adopt every strictly newer entry and report what
    /// changed. Entries about this node itself are ignored — a node is the sole
    /// authority on its own current incarnation.
    pub fn merge_digest(&mut self, remote: &[MemberDigestEntry]) -> DigestOutcome {
        let mut outcome = DigestOutcome::default();
        for &(node, inc, alive) in remote {
            if node == self.me || node.0 as usize >= self.entries.len() {
                continue;
            }
            if alive {
                if let AliveVerdict::Superseded { was_alive: false } = self.note_alive(node, inc) {
                    outcome.revived.push(node);
                }
            } else if self.note_failure(node, inc) == FailureVerdict::Apply {
                outcome.new_deaths.push(node);
            }
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stale_failure_notice_is_dropped() {
        let mut view = MembershipView::new(NodeId(0), 4, 0);
        // Node 2 died at incarnation 0, restarted as incarnation 1.
        assert_eq!(view.note_failure(NodeId(2), 0), FailureVerdict::Apply);
        assert_eq!(view.note_alive(NodeId(2), 1), AliveVerdict::Superseded { was_alive: false });
        // A late notice about the dead incarnation 0 must not re-kill it.
        assert_eq!(view.note_failure(NodeId(2), 0), FailureVerdict::Stale);
        assert!(view.is_alive(NodeId(2)));
        assert_eq!(view.incarnation_of(NodeId(2)), 1);
    }

    #[test]
    fn newer_failure_supersedes() {
        let mut view = MembershipView::new(NodeId(0), 4, 0);
        assert_eq!(view.note_failure(NodeId(2), 0), FailureVerdict::Apply);
        assert_eq!(view.note_failure(NodeId(2), 0), FailureVerdict::AlreadyDead);
        view.note_alive(NodeId(2), 1);
        // Death evidence for the *current* incarnation applies exactly once.
        assert_eq!(view.note_failure(NodeId(2), 1), FailureVerdict::Apply);
        assert_eq!(view.note_failure(NodeId(2), 1), FailureVerdict::AlreadyDead);
        // Death evidence for a yet-newer incarnation implies restart + death; the
        // node was already failed locally so nothing is re-applied.
        assert_eq!(view.note_failure(NodeId(2), 3), FailureVerdict::AlreadyDead);
        assert_eq!(view.incarnation_of(NodeId(2)), 3);
        assert!(!view.is_alive(NodeId(2)));
    }

    #[test]
    fn death_is_sticky_within_an_incarnation() {
        let mut view = MembershipView::new(NodeId(0), 4, 0);
        view.note_failure(NodeId(1), 2);
        assert_eq!(view.note_alive(NodeId(1), 2), AliveVerdict::Stale);
        assert_eq!(view.note_alive(NodeId(1), 1), AliveVerdict::Stale);
        assert_eq!(view.note_alive(NodeId(1), 3), AliveVerdict::Superseded { was_alive: false });
    }

    #[test]
    fn driver_recovery_bumps_once() {
        let mut view = MembershipView::new(NodeId(0), 4, 0);
        view.note_driver_failure(NodeId(3));
        assert_eq!(view.note_driver_recovery(NodeId(3)), Some(1));
        // Late duplicate recovery notices are idempotent.
        assert_eq!(view.note_driver_recovery(NodeId(3)), None);
        assert_eq!(view.incarnation_of(NodeId(3)), 1);
    }

    #[test]
    fn digest_merge_teaches_missed_deaths() {
        // Survivor saw node 3 die; a freshly restarted node 1 did not.
        let mut survivor = MembershipView::new(NodeId(0), 4, 0);
        survivor.note_driver_failure(NodeId(3));
        let mut restarted = MembershipView::new(NodeId(1), 4, 1);

        // The survivor knows strictly more about node 3 (and about node 1's own
        // entry, which the reply skips adopting on the other side).
        let reply = survivor.newer_than(&restarted.digest());
        assert!(reply.contains(&(NodeId(3), 0, false)));

        let outcome = restarted.merge_digest(&reply);
        assert_eq!(outcome.new_deaths, vec![NodeId(3)]);
        assert!(!restarted.is_alive(NodeId(3)));

        // Once merged, the survivor has nothing newer to teach.
        assert!(survivor.newer_than(&restarted.digest()).is_empty());
    }

    #[test]
    fn refutation_bumps_past_the_evidence() {
        let mut view = MembershipView::new(NodeId(1), 4, 1);
        // Suspected at our own incarnation: one bump suffices.
        assert_eq!(view.refute(1), 2);
        // A claim about an incarnation ahead of ours (e.g. gossiped from a
        // stale future entry) is jumped over, not merely incremented.
        assert_eq!(view.refute(7), 8);
        assert_eq!(view.self_incarnation(), 8);
        assert!(view.is_alive(NodeId(1)));
        // Peers arbitrate the resulting alive claim as a supersession.
        let mut peer = MembershipView::new(NodeId(0), 4, 0);
        peer.note_failure(NodeId(1), 1);
        assert_eq!(peer.note_alive(NodeId(1), 8), AliveVerdict::Superseded { was_alive: false });
    }

    #[test]
    fn merge_ignores_claims_about_self() {
        let mut view = MembershipView::new(NodeId(1), 4, 1);
        let outcome = view.merge_digest(&[(NodeId(1), 5, false)]);
        assert_eq!(outcome, DigestOutcome::default());
        assert_eq!(view.self_incarnation(), 1);
        assert!(view.is_alive(NodeId(1)));
    }
}
