//! The per-node local object store.
//!
//! Each node buffers a set of objects; workers on the node read and write them through
//! shared memory in the paper's implementation. The store tracks streaming progress
//! (for pipelining), pins locally-`Put` objects until the framework deletes them, and
//! evicts unpinned copies LRU when it runs out of room (§6 "Garbage collection").
//!
//! The store is a zero-copy pass-through for the data plane: [`LocalStore::append`]
//! adopts incoming blocks as shared segments, [`LocalStore::read`] hands ranges back
//! as shared views (segmented when the range spans received blocks — see
//! [`Payload::Segments`]), and only [`LocalStore::get_complete`] — the final
//! consumer — coalesces, once.

use std::collections::HashMap;

use crate::buffer::{Payload, ProgressBuffer};
use crate::error::{HopliteError, Result};
use crate::object::ObjectId;

/// A stored object plus store-level bookkeeping.
#[derive(Clone, Debug)]
struct StoredObject {
    buffer: ProgressBuffer,
    /// Pin references holding this copy in memory (the local `Put` origin, in-flight
    /// reduce inputs, …). Only a copy with zero pins is evictable or idle-collectable.
    pins: u32,
    last_access: u64,
    /// Two-generation idle-GC mark: set by a sweep, cleared by any access. A copy
    /// still marked when the *next* sweep runs has been idle a full generation and
    /// is collected.
    idle: bool,
}

impl StoredObject {
    fn pinned(&self) -> bool {
        self.pins > 0
    }
}

/// The local object store of one node.
#[derive(Debug)]
pub struct LocalStore {
    objects: HashMap<ObjectId, StoredObject>,
    capacity: u64,
    used: u64,
    access_counter: u64,
    evictions: u64,
}

impl LocalStore {
    /// Create a store with `capacity` bytes of room.
    pub fn new(capacity: u64) -> Self {
        LocalStore { objects: HashMap::new(), capacity, used: 0, access_counter: 0, evictions: 0 }
    }

    /// Number of objects currently stored.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// `true` when the store holds no objects.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Bytes of capacity currently accounted for.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Total eviction count (for metrics and tests).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// `true` if the object exists locally (partial or complete).
    pub fn contains(&self, object: ObjectId) -> bool {
        self.objects.contains_key(&object)
    }

    /// `true` if the object exists locally and is complete.
    pub fn is_complete(&self, object: ObjectId) -> bool {
        self.objects.get(&object).map(|o| o.buffer.is_complete()).unwrap_or(false)
    }

    /// Current watermark of an object, if present.
    pub fn watermark(&self, object: ObjectId) -> Option<u64> {
        self.objects.get(&object).map(|o| o.buffer.watermark())
    }

    /// Total size of an object, if present.
    pub fn total_size(&self, object: ObjectId) -> Option<u64> {
        self.objects.get(&object).map(|o| o.buffer.total_size())
    }

    /// Insert a complete object (the `Put` path). Locally-created objects are pinned
    /// until [`LocalStore::delete`] so there is always at least one copy to serve
    /// future `Get`s from (§6).
    pub fn put_complete(&mut self, object: ObjectId, payload: Payload, pinned: bool) -> Result<()> {
        if self.objects.contains_key(&object) {
            return Err(HopliteError::ObjectAlreadyExists(object));
        }
        let size = payload.len();
        self.make_room(size)?;
        self.used += size;
        self.access_counter += 1;
        self.objects.insert(
            object,
            StoredObject {
                buffer: ProgressBuffer::complete_from(payload),
                pins: pinned as u32,
                last_access: self.access_counter,
                idle: false,
            },
        );
        Ok(())
    }

    /// Begin receiving an object of `total_size` bytes (the pull / reduce-output path).
    /// Received copies are unpinned and therefore evictable once complete.
    pub fn begin_receive(
        &mut self,
        object: ObjectId,
        total_size: u64,
        synthetic: bool,
    ) -> Result<()> {
        if self.objects.contains_key(&object) {
            return Err(HopliteError::ObjectAlreadyExists(object));
        }
        self.make_room(total_size)?;
        self.used += total_size;
        self.access_counter += 1;
        self.objects.insert(
            object,
            StoredObject {
                buffer: ProgressBuffer::new(total_size, synthetic),
                pins: 0,
                last_access: self.access_counter,
                idle: false,
            },
        );
        Ok(())
    }

    /// Append a block to an in-progress object. Returns the new watermark.
    pub fn append(&mut self, object: ObjectId, offset: u64, payload: &Payload) -> Result<u64> {
        let entry = self.objects.get_mut(&object).ok_or(HopliteError::ObjectNotFound(object))?;
        entry.idle = false;
        if !entry.buffer.append_at(offset, payload) {
            return Err(HopliteError::Protocol(format!(
                "out-of-order append to {object:?}: offset {offset}, watermark {}",
                entry.buffer.watermark()
            )));
        }
        Ok(entry.buffer.watermark())
    }

    /// Read a range of an object if it is below the watermark. Zero-copy: the result
    /// shares the stored segments (and is a [`Payload::Segments`] view when the range
    /// straddles received blocks).
    pub fn read(&mut self, object: ObjectId, offset: u64, len: u64) -> Option<Payload> {
        self.access_counter += 1;
        let counter = self.access_counter;
        let entry = self.objects.get_mut(&object)?;
        entry.last_access = counter;
        entry.idle = false;
        entry.buffer.read(offset, len)
    }

    /// The complete payload of an object, if it is complete. This is the final
    /// consumer of the receive path: the first call coalesces a multi-segment buffer
    /// (the one copy the pipeline pays), later calls are zero-copy clones.
    pub fn get_complete(&mut self, object: ObjectId) -> Option<Payload> {
        self.access_counter += 1;
        let counter = self.access_counter;
        let entry = self.objects.get_mut(&object)?;
        entry.last_access = counter;
        entry.idle = false;
        entry.buffer.to_payload()
    }

    /// Pin or unpin an object copy (legacy single-owner pinning: sets the pin count
    /// to exactly one or zero).
    pub fn set_pinned(&mut self, object: ObjectId, pinned: bool) {
        if let Some(entry) = self.objects.get_mut(&object) {
            entry.pins = pinned as u32;
        }
    }

    /// Take one pin reference on an object copy (refcounted: the copy stays
    /// unevictable until every pin is released).
    pub fn pin(&mut self, object: ObjectId) {
        if let Some(entry) = self.objects.get_mut(&object) {
            entry.pins += 1;
        }
    }

    /// Release one pin reference taken with [`LocalStore::pin`].
    pub fn unpin(&mut self, object: ObjectId) {
        if let Some(entry) = self.objects.get_mut(&object) {
            entry.pins = entry.pins.saturating_sub(1);
        }
    }

    /// Current pin count of an object copy (tests and diagnostics).
    pub fn pin_count(&self, object: ObjectId) -> u32 {
        self.objects.get(&object).map_or(0, |o| o.pins)
    }

    /// Whether any copy is eligible for idle GC — unpinned and complete. Drives the
    /// node facade's lazy arming of the sweep timer.
    pub fn has_idle_candidates(&self) -> bool {
        self.objects.values().any(|o| !o.pinned() && o.buffer.is_complete())
    }

    /// One idle-GC generation: collect every unpinned complete copy that was already
    /// marked idle by the previous sweep and is still untouched, then mark the
    /// survivors. Two sweeps a TTL apart therefore drop copies idle for between one
    /// and two TTLs — without tracking per-object deadlines. Returns the collected
    /// ids so the caller can withdraw their directory registrations.
    pub fn sweep_idle(&mut self) -> Vec<ObjectId> {
        let victims: Vec<ObjectId> = self
            .objects
            .iter()
            .filter(|(_, o)| o.idle && !o.pinned() && o.buffer.is_complete())
            .map(|(id, _)| *id)
            .collect();
        for id in &victims {
            let entry = self.objects.remove(id).expect("victim exists");
            self.used = self.used.saturating_sub(entry.buffer.total_size());
            self.evictions += 1;
        }
        for entry in self.objects.values_mut() {
            if !entry.pinned() && entry.buffer.is_complete() {
                entry.idle = true;
            }
        }
        victims
    }

    /// Remove an object copy regardless of pinning (used by `Delete`).
    pub fn delete(&mut self, object: ObjectId) -> bool {
        if let Some(entry) = self.objects.remove(&object) {
            self.used = self.used.saturating_sub(entry.buffer.total_size());
            true
        } else {
            false
        }
    }

    /// All object ids currently stored (tests and diagnostics).
    pub fn object_ids(&self) -> Vec<ObjectId> {
        self.objects.keys().copied().collect()
    }

    /// Evict unpinned, complete objects LRU-first until `needed` more bytes fit.
    fn make_room(&mut self, needed: u64) -> Result<()> {
        if needed > self.capacity {
            return Err(HopliteError::OutOfMemory { requested: needed, capacity: self.capacity });
        }
        while self.used + needed > self.capacity {
            // Oldest unpinned complete object first. In-progress (partial) objects are
            // never evicted: they are actively receiving data.
            let victim = self
                .objects
                .iter()
                .filter(|(_, o)| !o.pinned() && o.buffer.is_complete())
                .min_by_key(|(_, o)| o.last_access)
                .map(|(id, _)| *id);
            match victim {
                Some(id) => {
                    let entry = self.objects.remove(&id).expect("victim exists");
                    self.used = self.used.saturating_sub(entry.buffer.total_size());
                    self.evictions += 1;
                }
                None => {
                    return Err(HopliteError::OutOfMemory {
                        requested: needed,
                        capacity: self.capacity,
                    })
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(name: &str) -> ObjectId {
        ObjectId::from_name(name)
    }

    #[test]
    fn put_get_roundtrip() {
        let mut s = LocalStore::new(1024);
        s.put_complete(obj("a"), Payload::from_vec(vec![1, 2, 3]), true).unwrap();
        assert!(s.is_complete(obj("a")));
        assert_eq!(s.get_complete(obj("a")).unwrap().as_bytes().unwrap().as_ref(), &[1, 2, 3]);
        assert_eq!(s.used(), 3);
        assert!(matches!(
            s.put_complete(obj("a"), Payload::zeros(1), true),
            Err(HopliteError::ObjectAlreadyExists(_))
        ));
    }

    #[test]
    fn streaming_receive() {
        let mut s = LocalStore::new(1024);
        s.begin_receive(obj("b"), 8, false).unwrap();
        assert!(!s.is_complete(obj("b")));
        assert_eq!(s.append(obj("b"), 0, &Payload::from_vec(vec![0, 1, 2, 3])).unwrap(), 4);
        assert!(s.read(obj("missing"), 0, 2).is_none(), "unknown object");
        assert_eq!(s.read(obj("b"), 2, 2).unwrap().as_bytes().unwrap().as_ref(), &[2, 3]);
        assert!(s.append(obj("b"), 6, &Payload::zeros(2)).is_err(), "gap rejected");
        s.append(obj("b"), 4, &Payload::from_vec(vec![4, 5, 6, 7])).unwrap();
        assert!(s.is_complete(obj("b")));
    }

    #[test]
    fn lru_eviction_spares_pinned_and_partial() {
        let mut s = LocalStore::new(100);
        s.put_complete(obj("pinned"), Payload::zeros(40), true).unwrap();
        s.put_complete(obj("old"), Payload::zeros(30), false).unwrap();
        s.begin_receive(obj("partial"), 20, false).unwrap();
        // Touch "old" so that it is *not* the LRU victim ordering under test; then add
        // an object that forces eviction.
        assert!(s.read(obj("old"), 0, 1).is_some());
        s.put_complete(obj("new"), Payload::zeros(10), false).unwrap(); // fits: 40+30+20+10
        assert_eq!(s.evictions(), 0);
        // Needs 30 more bytes: only "old" and "new" are evictable. "old" was touched
        // *before* "new" was inserted, so "old" is the least recently used and goes
        // first; its 30 bytes are exactly enough.
        s.put_complete(obj("big"), Payload::zeros(30), false).unwrap();
        assert_eq!(s.evictions(), 1);
        assert!(s.contains(obj("pinned")));
        assert!(s.contains(obj("partial")));
        assert!(!s.contains(obj("old")));
        assert!(s.contains(obj("new")));
    }

    #[test]
    fn oversized_requests_fail() {
        let mut s = LocalStore::new(10);
        assert!(matches!(
            s.put_complete(obj("x"), Payload::zeros(11), false),
            Err(HopliteError::OutOfMemory { .. })
        ));
        // Unevictable content (all pinned) also produces OutOfMemory.
        s.put_complete(obj("a"), Payload::zeros(10), true).unwrap();
        assert!(matches!(
            s.put_complete(obj("b"), Payload::zeros(5), false),
            Err(HopliteError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn delete_frees_space() {
        let mut s = LocalStore::new(10);
        s.put_complete(obj("a"), Payload::zeros(10), true).unwrap();
        assert!(s.delete(obj("a")));
        assert!(!s.delete(obj("a")));
        assert_eq!(s.used(), 0);
        s.put_complete(obj("b"), Payload::zeros(10), false).unwrap();
    }

    #[test]
    fn segmented_payloads_flow_through_without_copies() {
        use bytes::Bytes;
        let mut s = LocalStore::new(1024);
        let first = Bytes::from(vec![1u8; 8]);
        let second = Bytes::from(vec![2u8; 8]);
        crate::copytrace::reset();
        s.put_complete(
            obj("seg"),
            crate::buffer::Payload::from_segments(vec![first.clone(), second]),
            true,
        )
        .unwrap();
        // A read inside the first segment aliases it; a straddling read stays a
        // segmented view. Neither copies.
        let inside = s.read(obj("seg"), 2, 4).unwrap();
        assert_eq!(inside.as_bytes().unwrap().as_slice().as_ptr(), first.as_slice()[2..].as_ptr());
        let straddling = s.read(obj("seg"), 6, 4).unwrap();
        assert!(straddling.as_bytes().is_none());
        assert_eq!(straddling, crate::buffer::Payload::from_vec(vec![1, 1, 2, 2]));
        assert_eq!(crate::copytrace::bytes_copied(), 0);
        // The final consumer pays the one coalesce.
        let full = s.get_complete(obj("seg")).unwrap();
        assert!(full.as_bytes().is_some());
        if cfg!(debug_assertions) {
            assert_eq!(crate::copytrace::bytes_copied(), 16);
        }
    }

    #[test]
    fn pins_are_refcounted() {
        let mut s = LocalStore::new(10);
        s.put_complete(obj("a"), Payload::zeros(10), false).unwrap();
        s.pin(obj("a"));
        s.pin(obj("a"));
        assert_eq!(s.pin_count(obj("a")), 2);
        // Two pins outstanding: the copy cannot be evicted to make room.
        assert!(s.put_complete(obj("b"), Payload::zeros(5), false).is_err());
        s.unpin(obj("a"));
        assert!(s.put_complete(obj("b"), Payload::zeros(5), false).is_err(), "one pin left");
        s.unpin(obj("a"));
        s.unpin(obj("a")); // extra release is harmless
        s.put_complete(obj("b"), Payload::zeros(5), false).unwrap();
        assert!(!s.contains(obj("a")));
    }

    #[test]
    fn idle_sweep_takes_two_generations_and_spares_touched_copies() {
        let mut s = LocalStore::new(1024);
        s.put_complete(obj("idle"), Payload::zeros(10), false).unwrap();
        s.put_complete(obj("hot"), Payload::zeros(10), false).unwrap();
        s.put_complete(obj("pinned"), Payload::zeros(10), true).unwrap();
        s.begin_receive(obj("partial"), 10, false).unwrap();
        // Generation 1: nothing collected yet, candidates are only marked.
        assert!(s.sweep_idle().is_empty());
        assert!(s.has_idle_candidates());
        // "hot" is touched between sweeps; "idle" is not.
        assert!(s.read(obj("hot"), 0, 1).is_some());
        let swept = s.sweep_idle();
        assert_eq!(swept, vec![obj("idle")]);
        assert!(!s.contains(obj("idle")));
        assert!(s.contains(obj("hot")), "touched copy survived");
        assert!(s.contains(obj("pinned")), "pinned copies are never idle-collected");
        assert!(s.contains(obj("partial")), "in-progress copies are never idle-collected");
        assert_eq!(s.used(), 30);
    }

    #[test]
    fn synthetic_objects_track_size_without_allocation() {
        let mut s = LocalStore::new(u64::MAX);
        s.begin_receive(obj("sim"), 1 << 30, true).unwrap();
        s.append(obj("sim"), 0, &Payload::synthetic(1 << 29)).unwrap();
        s.append(obj("sim"), 1 << 29, &Payload::synthetic(1 << 29)).unwrap();
        assert!(s.is_complete(obj("sim")));
        assert!(s.get_complete(obj("sim")).unwrap().is_synthetic());
    }
}
