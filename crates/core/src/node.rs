//! The per-node Hoplite state machine.
//!
//! An [`ObjectStoreNode`] combines the local object store, the directory shard this
//! node hosts, the receiver-driven broadcast logic (§3.4.1), the reduce coordinator and
//! participant logic (§3.4.2), and the failure-adaptation rules (§3.5). It is entirely
//! sans-IO: drivers feed it client operations, protocol messages, timer expirations and
//! peer-failure notifications, and it returns [`Effect`]s (messages to send, client
//! replies, timers to arm).
//!
//! The same state machine runs unchanged under the discrete-event simulator (cluster
//! scale, synthetic payloads) and over the real in-process / TCP transports (real
//! bytes, real reductions).

use std::collections::{HashMap, VecDeque};

use crate::buffer::Payload;
use crate::config::HopliteConfig;
use crate::directory::DirectoryShard;
use crate::error::HopliteError;
use crate::metrics::NodeMetrics;
use crate::object::{NodeId, ObjectId, ObjectStatus};
use crate::protocol::{
    ClientOp, ClientReply, Effect, Message, OpId, QueryResult, ReduceInstruction, ReduceParent,
    TimerToken,
};
use crate::reduce::{DegreeModel, ReduceInput, ReduceSpec, ReduceTreePlan};
use crate::store::LocalStore;
use crate::time::Time;

/// Static description of the cluster shared by every node: the node set and the
/// directory sharding function.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClusterView {
    /// All node ids, in index order.
    pub nodes: Vec<NodeId>,
}

impl ClusterView {
    /// A cluster of `n` nodes numbered `0..n`.
    pub fn of_size(n: usize) -> ClusterView {
        ClusterView { nodes: (0..n as u32).map(NodeId).collect() }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` for an empty cluster (never used in practice).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node hosting the directory shard responsible for `object`. The directory is
    /// a sharded hash table distributed across all nodes (§3.2); we use one shard per
    /// node and hash the object id onto it.
    pub fn shard_node(&self, object: ObjectId) -> NodeId {
        let h = u64::from_le_bytes(object.0[..8].try_into().expect("object id width"));
        self.nodes[(h % self.nodes.len() as u64) as usize]
    }
}

/// Node-level options that are not protocol parameters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodeOptions {
    /// Use length-only payloads (simulator mode).
    pub synthetic_data: bool,
    /// Model the worker→store copy of `Put` as a pipelined, timed copy instead of an
    /// instantaneous one (§3.3). The simulator enables this; real transports complete
    /// the copy inline.
    pub pipelined_put: bool,
}

impl Default for NodeOptions {
    fn default() -> Self {
        NodeOptions { synthetic_data: false, pipelined_put: false }
    }
}

/// State of one in-progress `Get` (broadcast receive) on this node.
#[derive(Debug, Default)]
struct GetState {
    /// Local client operations waiting for the object.
    waiting_ops: Vec<OpId>,
    /// The sender we are currently pulling from, if any.
    pulling_from: Option<NodeId>,
    /// Senders we must not be pointed back at (observed failures).
    excluded: Vec<NodeId>,
    /// Outstanding directory query id, if any.
    query_id: Option<u64>,
}

/// One transfer we are serving to a remote receiver.
#[derive(Debug, Clone, PartialEq, Eq)]
struct OutgoingTransfer {
    to: NodeId,
    next_offset: u64,
}

/// One accumulating block of a reduce participant.
#[derive(Debug, Clone, Default)]
struct BlockAccum {
    payload: Option<Payload>,
    inputs_applied: usize,
}

/// Per-slot reduce participant state.
#[derive(Debug)]
struct ReduceParticipant {
    instr: ReduceInstruction,
    blocks: Vec<BlockAccum>,
    /// Number of own-object blocks already folded into `blocks`.
    own_blocks_ingested: u64,
    /// Next block index to emit (to the parent, or into the local result object for
    /// the root).
    next_emit_block: u64,
    /// Root only: whether the result object has been created in the local store.
    root_started: bool,
}

impl ReduceParticipant {
    fn new(instr: ReduceInstruction) -> Self {
        let num_blocks = num_blocks(instr.object_size, instr.block_size) as usize;
        ReduceParticipant {
            instr,
            blocks: vec![BlockAccum::default(); num_blocks.max(1)],
            own_blocks_ingested: 0,
            next_emit_block: 0,
            root_started: false,
        }
    }

    fn reset(&mut self) {
        for b in &mut self.blocks {
            *b = BlockAccum::default();
        }
        self.own_blocks_ingested = 0;
        self.next_emit_block = 0;
        self.root_started = false;
    }
}

/// Coordinator state for a reduce initiated on this node.
#[derive(Debug)]
struct ReduceCoordinator {
    target: ObjectId,
    /// Kept for diagnostics and future feasibility checks (`lost > len - num_objects`).
    #[allow(dead_code)]
    sources: Vec<ObjectId>,
    num_objects: usize,
    spec: ReduceSpec,
    degree_override: Option<usize>,
    object_size: Option<u64>,
    plan: Option<ReduceTreePlan>,
    notify_op: Option<OpId>,
    done: bool,
}

/// The Hoplite state machine for one node.
pub struct ObjectStoreNode {
    id: NodeId,
    cfg: HopliteConfig,
    opts: NodeOptions,
    cluster: ClusterView,
    store: LocalStore,
    shard: DirectoryShard,
    metrics: NodeMetrics,

    next_query_id: u64,
    next_timer: u64,

    /// In-progress local `Get`s, keyed by object.
    gets: HashMap<ObjectId, GetState>,
    /// Map from outstanding query id to object (to validate replies).
    queries: HashMap<u64, ObjectId>,
    /// Transfers we are serving, keyed by object.
    outgoing: HashMap<ObjectId, Vec<OutgoingTransfer>>,
    /// Pipelined `Put`s in progress: object -> (payload, next offset, op).
    pending_puts: HashMap<ObjectId, (Payload, u64, OpId)>,
    /// Timer token -> pipelined put object.
    put_timers: HashMap<TimerToken, ObjectId>,
    /// Reduce coordinators keyed by target object.
    coordinators: HashMap<ObjectId, ReduceCoordinator>,
    /// Source object -> reduce targets coordinated here that consume it.
    source_routing: HashMap<ObjectId, Vec<ObjectId>>,
    /// Reduce participants keyed by (target, slot).
    participants: HashMap<(ObjectId, usize), ReduceParticipant>,
    /// Local object -> participant keys that use it as their own input.
    own_object_routing: HashMap<ObjectId, Vec<(ObjectId, usize)>>,
    /// Messages this node sent to itself, processed at the end of each handler.
    self_queue: VecDeque<Message>,
}

fn num_blocks(size: u64, block: u64) -> u64 {
    if size == 0 {
        0
    } else {
        size.div_ceil(block)
    }
}

impl ObjectStoreNode {
    /// Create a node.
    pub fn new(id: NodeId, cfg: HopliteConfig, cluster: ClusterView, opts: NodeOptions) -> Self {
        let shard = DirectoryShard::new(id.index(), cfg.clone());
        let store = LocalStore::new(cfg.store_capacity);
        ObjectStoreNode {
            id,
            cfg,
            opts,
            cluster,
            store,
            shard,
            metrics: NodeMetrics::default(),
            next_query_id: 1,
            next_timer: 1,
            gets: HashMap::new(),
            queries: HashMap::new(),
            outgoing: HashMap::new(),
            pending_puts: HashMap::new(),
            put_timers: HashMap::new(),
            coordinators: HashMap::new(),
            source_routing: HashMap::new(),
            participants: HashMap::new(),
            own_object_routing: HashMap::new(),
            self_queue: VecDeque::new(),
        }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Configuration in effect.
    pub fn config(&self) -> &HopliteConfig {
        &self.cfg
    }

    /// Metrics counters.
    pub fn metrics(&self) -> &NodeMetrics {
        &self.metrics
    }

    /// Read-only access to the local store (tests and drivers).
    pub fn store(&self) -> &LocalStore {
        &self.store
    }

    /// Whether this node currently holds a complete copy of `object`.
    pub fn has_complete(&self, object: ObjectId) -> bool {
        self.store.is_complete(object)
    }

    // ------------------------------------------------------------------ client ops --

    /// Submit a client operation.
    pub fn handle_client(&mut self, now: Time, op_id: OpId, op: ClientOp, out: &mut Vec<Effect>) {
        match op {
            ClientOp::Put { object, payload } => self.client_put(now, op_id, object, payload, out),
            ClientOp::Get { object } => self.client_get(now, op_id, object, out),
            ClientOp::Reduce { target, sources, num_objects, spec, degree } => {
                self.client_reduce(now, op_id, target, sources, num_objects, spec, degree, out)
            }
            ClientOp::Delete { object } => self.client_delete(now, op_id, object, out),
        }
        self.drain_self_queue(now, out);
    }

    /// Deliver a protocol message from `from`.
    pub fn handle_message(&mut self, now: Time, from: NodeId, msg: Message, out: &mut Vec<Effect>) {
        self.dispatch_message(now, from, msg, out);
        self.drain_self_queue(now, out);
    }

    /// A timer armed via [`Effect::SetTimer`] fired.
    pub fn handle_timer(&mut self, now: Time, token: TimerToken, out: &mut Vec<Effect>) {
        if let Some(object) = self.put_timers.remove(&token) {
            self.advance_pipelined_put(now, object, out);
        }
        self.drain_self_queue(now, out);
    }

    /// A peer node failed (detected by the driver: socket liveness in real deployments,
    /// an explicit event in the simulator).
    pub fn handle_peer_failed(&mut self, now: Time, peer: NodeId, out: &mut Vec<Effect>) {
        if peer == self.id {
            return;
        }
        // Directory shard forgets everything about the failed node.
        self.shard.node_failed(peer);
        // Stop serving transfers destined to it.
        for transfers in self.outgoing.values_mut() {
            transfers.retain(|t| t.to != peer);
        }
        // Broadcast receivers that were pulling from it fail over (§3.5.1).
        let failed_objects: Vec<ObjectId> = self
            .gets
            .iter()
            .filter(|(_, g)| g.pulling_from == Some(peer))
            .map(|(o, _)| *o)
            .collect();
        for object in failed_objects {
            self.metrics.broadcast_failovers += 1;
            self.restart_get(now, object, Some(peer), out);
        }
        // Reduce coordinators repair their trees (§3.5.2).
        let targets: Vec<ObjectId> = self.coordinators.keys().copied().collect();
        for target in targets {
            let mut coord = self.coordinators.remove(&target).expect("coordinator exists");
            if let Some(plan) = coord.plan.as_mut() {
                let delta = plan.on_node_failed(peer);
                self.issue_instructions(&coord, &delta.affected_slots, out);
            }
            self.coordinators.insert(target, coord);
        }
        self.drain_self_queue(now, out);
    }

    /// A previously-failed peer came back (empty). Nothing is required of the protocol
    /// here — recovered nodes re-register objects as they recreate them — but drivers
    /// call it for symmetry and future extensions.
    pub fn handle_peer_recovered(&mut self, _now: Time, _peer: NodeId, _out: &mut Vec<Effect>) {}

    // ------------------------------------------------------------------------ put --

    fn client_put(
        &mut self,
        now: Time,
        op_id: OpId,
        object: ObjectId,
        payload: Payload,
        out: &mut Vec<Effect>,
    ) {
        let size = payload.len();
        if self.store.contains(object) {
            out.push(Effect::Reply {
                op: op_id,
                reply: ClientReply::Error { error: HopliteError::ObjectAlreadyExists(object) },
            });
            return;
        }
        self.metrics.objects_put += 1;
        // Small objects take the directory fast path (§3.2): cache the whole object in
        // the directory shard; there is no block pipeline to run.
        if self.cfg.is_inline(size) {
            if let Err(error) = self.store.put_complete(object, payload.clone(), true) {
                out.push(Effect::Reply { op: op_id, reply: ClientReply::Error { error } });
                return;
            }
            let shard = self.cluster.shard_node(object);
            self.send(shard, Message::DirPutInline { object, holder: self.id, payload }, out);
            out.push(Effect::Reply { op: op_id, reply: ClientReply::PutDone { object } });
            return;
        }
        if self.opts.pipelined_put && size > self.cfg.block_size {
            // Model the worker→store memcpy as a timed, block-granular copy so that the
            // network transfer can overlap with it (§3.3). The object is registered as
            // a partial location immediately.
            if let Err(error) = self.store.begin_receive(object, size, payload.is_synthetic()) {
                out.push(Effect::Reply { op: op_id, reply: ClientReply::Error { error } });
                return;
            }
            self.store.set_pinned(object, true);
            let shard = self.cluster.shard_node(object);
            self.send(
                shard,
                Message::DirRegister {
                    object,
                    holder: self.id,
                    status: ObjectStatus::Partial,
                    size,
                },
                out,
            );
            self.pending_puts.insert(object, (payload, 0, op_id));
            self.schedule_put_step(now, object, out);
        } else {
            if let Err(error) = self.store.put_complete(object, payload, true) {
                out.push(Effect::Reply { op: op_id, reply: ClientReply::Error { error } });
                return;
            }
            let shard = self.cluster.shard_node(object);
            self.send(
                shard,
                Message::DirRegister {
                    object,
                    holder: self.id,
                    status: ObjectStatus::Complete,
                    size,
                },
                out,
            );
            out.push(Effect::Reply { op: op_id, reply: ClientReply::PutDone { object } });
            self.object_became_complete(now, object, out);
        }
    }

    fn schedule_put_step(&mut self, _now: Time, object: ObjectId, out: &mut Vec<Effect>) {
        let token = TimerToken(self.next_timer);
        self.next_timer += 1;
        self.put_timers.insert(token, object);
        let step = (self.cfg.block_size as f64 / self.cfg.memcpy_bandwidth).max(0.0);
        out.push(Effect::SetTimer { token, delay: crate::time::Duration::from_secs_f64(step) });
    }

    fn advance_pipelined_put(&mut self, now: Time, object: ObjectId, out: &mut Vec<Effect>) {
        let Some((payload, offset, op_id)) = self.pending_puts.remove(&object) else { return };
        let total = payload.len();
        let len = self.cfg.block_size.min(total - offset);
        let block = payload.slice(offset, len);
        if self.store.append(object, offset, &block).is_err() {
            // The object was deleted mid-copy; drop the put.
            out.push(Effect::Reply {
                op: op_id,
                reply: ClientReply::Error { error: HopliteError::ObjectDeleted(object) },
            });
            return;
        }
        let new_offset = offset + len;
        if new_offset >= total {
            out.push(Effect::Reply { op: op_id, reply: ClientReply::PutDone { object } });
            self.object_became_complete(now, object, out);
        } else {
            self.pending_puts.insert(object, (payload, new_offset, op_id));
            out.push(Effect::LocalProgress { object, watermark: new_offset, total_size: total });
            self.pump_outgoing(object, out);
            self.pump_participants_for(now, object, out);
            self.schedule_put_step(now, object, out);
        }
    }

    // ------------------------------------------------------------------------ get --

    fn client_get(&mut self, now: Time, op_id: OpId, object: ObjectId, out: &mut Vec<Effect>) {
        if let Some(payload) = self.store.get_complete(object) {
            self.metrics.gets_completed += 1;
            out.push(Effect::Reply { op: op_id, reply: ClientReply::GetDone { object, payload } });
            return;
        }
        let already_tracking = self.gets.contains_key(&object) || self.store.contains(object);
        let entry = self.gets.entry(object).or_default();
        entry.waiting_ops.push(op_id);
        if already_tracking {
            // Either a pull is already in flight, or the object is being created
            // locally (pipelined put / reduce root); the reply happens on completion.
            return;
        }
        self.issue_directory_query(now, object, out);
    }

    fn issue_directory_query(&mut self, _now: Time, object: ObjectId, out: &mut Vec<Effect>) {
        let query_id = self.next_query_id;
        self.next_query_id += 1;
        let exclude = self.gets.get(&object).map(|g| g.excluded.clone()).unwrap_or_default();
        if let Some(g) = self.gets.get_mut(&object) {
            g.query_id = Some(query_id);
            g.pulling_from = None;
        }
        self.queries.insert(query_id, object);
        let shard = self.cluster.shard_node(object);
        self.send(
            shard,
            Message::DirQuery { object, requester: self.id, query_id, exclude },
            out,
        );
    }

    fn restart_get(
        &mut self,
        now: Time,
        object: ObjectId,
        failed_sender: Option<NodeId>,
        out: &mut Vec<Effect>,
    ) {
        let Some(g) = self.gets.get_mut(&object) else { return };
        if let Some(failed) = failed_sender {
            if !g.excluded.contains(&failed) {
                g.excluded.push(failed);
            }
        }
        g.pulling_from = None;
        self.issue_directory_query(now, object, out);
    }

    fn handle_query_reply(
        &mut self,
        now: Time,
        object: ObjectId,
        query_id: u64,
        result: QueryResult,
        out: &mut Vec<Effect>,
    ) {
        if self.queries.remove(&query_id) != Some(object) {
            return; // stale reply from an abandoned query
        }
        let Some(get) = self.gets.get_mut(&object) else { return };
        if get.query_id != Some(query_id) {
            return;
        }
        get.query_id = None;
        match result {
            QueryResult::Inline { payload } => {
                self.metrics.directory_inline_hits += 1;
                if !self.store.contains(object) {
                    let _ = self.store.put_complete(object, payload, false);
                }
                self.object_became_complete(now, object, out);
            }
            QueryResult::Location { node, status: _, size } => {
                if !self.store.contains(object) {
                    if let Err(error) =
                        self.store.begin_receive(object, size, self.opts.synthetic_data)
                    {
                        self.fail_gets(object, error, out);
                        return;
                    }
                }
                // Register ourselves as a partial location right away so later
                // receivers can chain off us (§3.4.1), then pull from the chosen
                // sender starting at our current watermark (resume-friendly, §3.5.1).
                let watermark = self.store.watermark(object).unwrap_or(0);
                if let Some(g) = self.gets.get_mut(&object) {
                    g.pulling_from = Some(node);
                }
                let shard = self.cluster.shard_node(object);
                self.send(
                    shard,
                    Message::DirRegister {
                        object,
                        holder: self.id,
                        status: ObjectStatus::Partial,
                        size,
                    },
                    out,
                );
                self.send(
                    node,
                    Message::PullRequest { object, requester: self.id, offset: watermark },
                    out,
                );
            }
            QueryResult::Deleted => {
                self.fail_gets(object, HopliteError::ObjectDeleted(object), out);
            }
        }
    }

    fn fail_gets(&mut self, object: ObjectId, error: HopliteError, out: &mut Vec<Effect>) {
        if let Some(get) = self.gets.remove(&object) {
            for op in get.waiting_ops {
                out.push(Effect::Reply {
                    op,
                    reply: ClientReply::Error { error: error.clone() },
                });
            }
        }
    }

    // ------------------------------------------------------------------- transfers --

    fn handle_pull_request(
        &mut self,
        _now: Time,
        object: ObjectId,
        requester: NodeId,
        offset: u64,
        out: &mut Vec<Effect>,
    ) {
        if !self.store.contains(object) {
            self.send(
                requester,
                Message::PullError { object, reason: "object not in store".to_string() },
                out,
            );
            return;
        }
        self.metrics.pulls_served += 1;
        let transfers = self.outgoing.entry(object).or_default();
        transfers.retain(|t| t.to != requester);
        transfers.push(OutgoingTransfer { to: requester, next_offset: offset });
        self.pump_outgoing(object, out);
    }

    /// Push as many blocks as are locally available to every active outgoing transfer
    /// of `object`.
    fn pump_outgoing(&mut self, object: ObjectId, out: &mut Vec<Effect>) {
        let Some(watermark) = self.store.watermark(object) else { return };
        let Some(total) = self.store.total_size(object) else { return };
        let Some(transfers) = self.outgoing.get_mut(&object) else { return };
        let block = self.cfg.block_size;
        let mut sends: Vec<(NodeId, u64, u64)> = Vec::new();
        for t in transfers.iter_mut() {
            while t.next_offset < watermark {
                let len = block.min(watermark - t.next_offset);
                sends.push((t.to, t.next_offset, len));
                t.next_offset += len;
            }
        }
        transfers.retain(|t| t.next_offset < total);
        if self.outgoing.get(&object).map(|t| t.is_empty()).unwrap_or(false) {
            self.outgoing.remove(&object);
        }
        for (to, offset, len) in sends {
            let payload = self
                .store
                .read(object, offset, len)
                .expect("offsets below the watermark are always readable");
            self.metrics.data_bytes_sent += payload.len();
            let complete = offset + len >= total;
            self.send(
                to,
                Message::PushBlock { object, offset, total_size: total, payload, complete },
                out,
            );
        }
    }

    fn handle_push_block(
        &mut self,
        now: Time,
        from: NodeId,
        object: ObjectId,
        offset: u64,
        total_size: u64,
        payload: Payload,
        out: &mut Vec<Effect>,
    ) {
        // Ignore stale blocks from a sender we already abandoned.
        if let Some(get) = self.gets.get(&object) {
            if let Some(current) = get.pulling_from {
                if current != from {
                    return;
                }
            }
        }
        if !self.store.contains(object) {
            if self.store.begin_receive(object, total_size, self.opts.synthetic_data).is_err() {
                return;
            }
        }
        self.metrics.data_bytes_received += payload.len();
        match self.store.append(object, offset, &payload) {
            Ok(watermark) => {
                out.push(Effect::LocalProgress { object, watermark, total_size });
                // Forward to any receivers chained off us, and to reduce participants
                // that use this object as their own input.
                self.pump_outgoing(object, out);
                self.pump_participants_for(now, object, out);
                if watermark >= total_size {
                    self.object_became_complete(now, object, out);
                }
            }
            Err(_) => {
                // Out-of-order data (e.g. from a sender we failed over from); ignore.
            }
        }
    }

    fn handle_pull_error(&mut self, now: Time, from: NodeId, object: ObjectId, out: &mut Vec<Effect>) {
        if let Some(get) = self.gets.get(&object) {
            if get.pulling_from == Some(from) {
                self.metrics.broadcast_failovers += 1;
                self.restart_get(now, object, Some(from), out);
            }
        }
    }

    /// Bookkeeping common to every way an object can become locally complete: a
    /// finished pull, a finished pipelined put, the inline fast path, or a reduce root
    /// materializing its result.
    fn object_became_complete(&mut self, now: Time, object: ObjectId, out: &mut Vec<Effect>) {
        let size = self.store.total_size(object).unwrap_or(0);
        out.push(Effect::LocalProgress { object, watermark: size, total_size: size });
        let shard = self.cluster.shard_node(object);
        // Tell the directory we now hold a complete copy, and release the sender we
        // pulled from (if any) so it can serve other receivers again.
        let pulled_from = self.gets.get(&object).and_then(|g| g.pulling_from);
        if !self.cfg.is_inline(size) {
            self.send(
                shard,
                Message::DirRegister {
                    object,
                    holder: self.id,
                    status: ObjectStatus::Complete,
                    size,
                },
                out,
            );
        }
        if let Some(sender) = pulled_from {
            self.send(
                shard,
                Message::DirTransferDone { object, receiver: self.id, sender },
                out,
            );
        }
        // Wake up local clients blocked on Get.
        if let Some(get) = self.gets.remove(&object) {
            if !get.waiting_ops.is_empty() {
                let payload =
                    self.store.get_complete(object).expect("object is complete");
                for op in get.waiting_ops {
                    self.metrics.gets_completed += 1;
                    out.push(Effect::Reply {
                        op,
                        reply: ClientReply::GetDone { object, payload: payload.clone() },
                    });
                }
            }
        }
        // Serve any receivers chained off us and reduce participants waiting on it.
        self.pump_outgoing(object, out);
        self.pump_participants_for(now, object, out);
    }

    // --------------------------------------------------------------------- delete --

    fn client_delete(&mut self, _now: Time, op_id: OpId, object: ObjectId, out: &mut Vec<Effect>) {
        let shard = self.cluster.shard_node(object);
        self.send(shard, Message::DirDelete { object }, out);
        out.push(Effect::Reply { op: op_id, reply: ClientReply::DeleteDone { object } });
    }

    fn handle_store_release(&mut self, object: ObjectId, out: &mut Vec<Effect>) {
        self.store.delete(object);
        self.pending_puts.remove(&object);
        // Anyone pulling from us can no longer be served.
        if let Some(transfers) = self.outgoing.remove(&object) {
            for t in transfers {
                self.send(
                    t.to,
                    Message::PullError { object, reason: "object deleted".to_string() },
                    out,
                );
            }
        }
        self.fail_gets(object, HopliteError::ObjectDeleted(object), out);
    }

    // --------------------------------------------------------------------- reduce --

    #[allow(clippy::too_many_arguments)]
    fn client_reduce(
        &mut self,
        _now: Time,
        op_id: OpId,
        target: ObjectId,
        sources: Vec<ObjectId>,
        num_objects: Option<usize>,
        spec: ReduceSpec,
        degree: Option<usize>,
        out: &mut Vec<Effect>,
    ) {
        let n = num_objects.unwrap_or(sources.len());
        if n == 0 || n > sources.len() || sources.is_empty() {
            out.push(Effect::Reply {
                op: op_id,
                reply: ClientReply::Error {
                    error: HopliteError::NotEnoughReduceInputs {
                        target,
                        requested: n,
                        available: sources.len(),
                    },
                },
            });
            return;
        }
        self.metrics.reduces_coordinated += 1;
        let coord = ReduceCoordinator {
            target,
            sources: sources.clone(),
            num_objects: n,
            spec,
            degree_override: degree,
            object_size: None,
            plan: None,
            notify_op: Some(op_id),
            done: false,
        };
        self.coordinators.insert(target, coord);
        // Subscribe to every source's directory shard; publications drive the dynamic
        // tree construction in arrival order (§3.4.2).
        for source in sources {
            self.source_routing.entry(source).or_default().push(target);
            let shard = self.cluster.shard_node(source);
            self.send(shard, Message::DirSubscribe { object: source, subscriber: self.id }, out);
        }
        out.push(Effect::Reply { op: op_id, reply: ClientReply::ReduceAccepted { target } });
    }

    fn handle_dir_publish(
        &mut self,
        now: Time,
        object: ObjectId,
        holder: NodeId,
        _status: ObjectStatus,
        size: u64,
        out: &mut Vec<Effect>,
    ) {
        let Some(targets) = self.source_routing.get(&object).cloned() else { return };
        for target in targets {
            let Some(mut coord) = self.coordinators.remove(&target) else { continue };
            if coord.done {
                self.coordinators.insert(target, coord);
                continue;
            }
            if coord.object_size.is_none() {
                coord.object_size = Some(size);
            }
            if coord.plan.is_none() {
                let object_size = coord.object_size.expect("size just set");
                let resolved_degree = match coord.degree_override {
                    Some(d) => {
                        if d == 0 || d >= coord.num_objects {
                            coord.num_objects
                        } else {
                            d
                        }
                    }
                    None => {
                        let model = DegreeModel {
                            latency: self.cfg.estimated_latency,
                            bandwidth: self.cfg.estimated_bandwidth,
                        };
                        model.choose(&self.cfg.reduce_degrees, coord.num_objects, object_size)
                    }
                };
                coord.plan = Some(ReduceTreePlan::new(coord.num_objects, resolved_degree.max(1)));
            }
            let delta = coord
                .plan
                .as_mut()
                .expect("plan created above")
                .offer_input(ReduceInput { object, node: holder });
            self.issue_instructions(&coord, &delta.affected_slots, out);
            self.coordinators.insert(target, coord);
        }
        let _ = now;
    }

    fn issue_instructions(
        &mut self,
        coord: &ReduceCoordinator,
        slots: &[usize],
        out: &mut Vec<Effect>,
    ) {
        let Some(plan) = coord.plan.as_ref() else { return };
        let Some(object_size) = coord.object_size else { return };
        for &slot in slots {
            let Some(view) = plan.slot_view(slot) else { continue };
            let instr = ReduceInstruction {
                target: coord.target,
                coordinator: self.id,
                slot,
                own_object: view.input.object,
                spec: coord.spec,
                object_size,
                block_size: self.cfg.block_size,
                num_inputs: view.num_inputs,
                epoch: view.epoch,
                parent: view.parent.map(|(pslot, pinput, pepoch)| ReduceParent {
                    slot: pslot,
                    node: pinput.node,
                    epoch: pepoch,
                }),
                children: view
                    .children
                    .iter()
                    .map(|(cslot, cinput)| (*cslot, cinput.node, cinput.object))
                    .collect(),
                is_root: view.is_root,
                total_slots: plan.shape().len(),
            };
            self.send(view.input.node, Message::ReduceInstruction(instr), out);
        }
    }

    fn handle_reduce_instruction(
        &mut self,
        now: Time,
        instr: ReduceInstruction,
        out: &mut Vec<Effect>,
    ) {
        let key = (instr.target, instr.slot);
        let own_object = instr.own_object;
        match self.participants.get_mut(&key) {
            Some(existing) => {
                let epoch_bumped = instr.epoch > existing.instr.epoch;
                let parent_changed = existing.instr.parent != instr.parent;
                let previous_root_started = existing.root_started;
                existing.instr = instr;
                if epoch_bumped {
                    self.metrics.reduce_resets += 1;
                    existing.reset();
                    // The root clears the partially-materialized result object too.
                    if previous_root_started {
                        let target = key.0;
                        self.invalidate_local_object(target, out);
                    }
                } else if parent_changed {
                    // Same accumulated data, new (or restarted) parent: re-send our
                    // finalized blocks from the start.
                    existing.next_emit_block = 0;
                }
            }
            None => {
                let participant = ReduceParticipant::new(instr);
                self.own_object_routing.entry(own_object).or_default().push(key);
                self.participants.insert(key, participant);
            }
        }
        self.pump_participant(now, key, out);
    }

    fn handle_reduce_block(
        &mut self,
        now: Time,
        target: ObjectId,
        to_slot: usize,
        from_slot: usize,
        parent_epoch: u64,
        block_index: u64,
        object_size: u64,
        payload: Payload,
        out: &mut Vec<Effect>,
    ) {
        let key = (target, to_slot);
        let Some(p) = self.participants.get_mut(&key) else { return };
        if parent_epoch != p.instr.epoch {
            return; // stale block from before a repair
        }
        if object_size != p.instr.object_size {
            return;
        }
        self.metrics.data_bytes_received += payload.len();
        let idx = block_index as usize;
        if idx >= p.blocks.len() {
            return;
        }
        let spec = p.instr.spec;
        let accum = &mut p.blocks[idx];
        match accum.payload.take() {
            None => accum.payload = Some(payload),
            Some(existing) => match spec.combine(target, &existing, &payload) {
                Ok(combined) => accum.payload = Some(combined),
                Err(_) => {
                    accum.payload = Some(existing);
                    return;
                }
            },
        }
        accum.inputs_applied += 1;
        let _ = from_slot;
        self.pump_participant(now, key, out);
    }

    /// Re-pump every participant whose own input object is `object` (called when that
    /// object's local watermark advances).
    fn pump_participants_for(&mut self, now: Time, object: ObjectId, out: &mut Vec<Effect>) {
        if let Some(keys) = self.own_object_routing.get(&object).cloned() {
            for key in keys {
                self.pump_participant(now, key, out);
            }
        }
    }

    /// Ingest newly-available own-object blocks and emit every finalized block in
    /// order, either to the parent slot or — for the root — into the local result
    /// object.
    fn pump_participant(&mut self, now: Time, key: (ObjectId, usize), out: &mut Vec<Effect>) {
        let Some(p) = self.participants.get_mut(&key) else { return };
        let target = p.instr.target;
        let spec = p.instr.spec;
        let block_size = p.instr.block_size;
        let object_size = p.instr.object_size;
        let total_blocks = num_blocks(object_size, block_size);

        // 1. Fold in own-object blocks that are now below the local watermark.
        let own = p.instr.own_object;
        let own_watermark = self.store.watermark(own).unwrap_or(0);
        let mut ingested = p.own_blocks_ingested;
        let mut to_ingest: Vec<(u64, u64, u64)> = Vec::new();
        while ingested < total_blocks {
            let offset = ingested * block_size;
            let len = block_size.min(object_size - offset);
            if offset + len > own_watermark {
                break;
            }
            to_ingest.push((ingested, offset, len));
            ingested += 1;
        }
        for (block_idx, offset, len) in to_ingest {
            let Some(block) = self.store.read(own, offset, len) else { break };
            let p = self.participants.get_mut(&key).expect("participant exists");
            let accum = &mut p.blocks[block_idx as usize];
            match accum.payload.take() {
                None => accum.payload = Some(block),
                Some(existing) => match spec.combine(target, &existing, &block) {
                    Ok(combined) => accum.payload = Some(combined),
                    Err(_) => {
                        accum.payload = Some(existing);
                        break;
                    }
                },
            }
            accum.inputs_applied += 1;
            p.own_blocks_ingested = block_idx + 1;
        }

        // 2. Emit finalized blocks in order.
        loop {
            let p = self.participants.get_mut(&key).expect("participant exists");
            let idx = p.next_emit_block;
            if idx >= total_blocks {
                break;
            }
            let num_inputs = p.instr.num_inputs;
            let ready = p.blocks[idx as usize].inputs_applied >= num_inputs
                && p.blocks[idx as usize].payload.is_some();
            if !ready {
                break;
            }
            let payload =
                p.blocks[idx as usize].payload.clone().expect("checked above");
            let is_root = p.instr.is_root;
            let parent = p.instr.parent;
            let epoch = p.instr.epoch;
            let slot = p.instr.slot;
            let coordinator = p.instr.coordinator;
            if is_root {
                // Materialize the result object locally, registering it as a partial
                // location right away so a following broadcast can start (§3.3).
                if !p.root_started {
                    p.root_started = true;
                    if !self.store.contains(target) {
                        let _ = self.store.begin_receive(
                            target,
                            object_size,
                            self.opts.synthetic_data || payload.is_synthetic(),
                        );
                        let shard = self.cluster.shard_node(target);
                        if !self.cfg.is_inline(object_size) {
                            self.send(
                                shard,
                                Message::DirRegister {
                                    object: target,
                                    holder: self.id,
                                    status: ObjectStatus::Partial,
                                    size: object_size,
                                },
                                out,
                            );
                        }
                    }
                }
                let offset = idx * block_size;
                if self.store.append(target, offset, &payload).is_ok() {
                    let p = self.participants.get_mut(&key).expect("participant exists");
                    p.next_emit_block = idx + 1;
                    let watermark = self.store.watermark(target).unwrap_or(0);
                    out.push(Effect::LocalProgress {
                        object: target,
                        watermark,
                        total_size: object_size,
                    });
                    self.pump_outgoing(target, out);
                    if watermark >= object_size {
                        // Small results go through the inline fast path like any Put.
                        if self.cfg.is_inline(object_size) {
                            if let Some(full) = self.store.get_complete(target) {
                                let shard = self.cluster.shard_node(target);
                                self.send(
                                    shard,
                                    Message::DirPutInline {
                                        object: target,
                                        holder: self.id,
                                        payload: full,
                                    },
                                    out,
                                );
                            }
                        }
                        self.object_became_complete(now, target, out);
                        self.send(coordinator, Message::ReduceDone { target, root: self.id }, out);
                    }
                } else {
                    break;
                }
            } else {
                let Some(parent) = parent else { break };
                self.metrics.reduce_blocks_sent += 1;
                self.metrics.data_bytes_sent += payload.len();
                self.send(
                    parent.node,
                    Message::ReduceBlock {
                        target,
                        to_slot: parent.slot,
                        from_slot: slot,
                        parent_epoch: parent.epoch,
                        block_index: idx,
                        object_size,
                        payload,
                    },
                    out,
                );
                let p = self.participants.get_mut(&key).expect("participant exists");
                p.next_emit_block = idx + 1;
                let _ = epoch;
            }
        }
    }

    fn handle_reduce_done(&mut self, op_target: ObjectId, out: &mut Vec<Effect>) {
        if let Some(coord) = self.coordinators.get_mut(&op_target) {
            if !coord.done {
                coord.done = true;
                if let Some(op) = coord.notify_op {
                    out.push(Effect::Reply {
                        op,
                        reply: ClientReply::ReduceComplete { target: op_target },
                    });
                }
            }
        }
    }

    /// Drop an invalid local partial copy (used when a reduce root clears its result):
    /// unregister from the directory, abort downstream pullers, and restart any local
    /// gets from scratch.
    fn invalidate_local_object(&mut self, object: ObjectId, out: &mut Vec<Effect>) {
        if !self.store.contains(object) {
            return;
        }
        self.store.delete(object);
        let shard = self.cluster.shard_node(object);
        self.send(shard, Message::DirUnregister { object, holder: self.id }, out);
        if let Some(transfers) = self.outgoing.remove(&object) {
            for t in transfers {
                self.send(
                    t.to,
                    Message::PullError { object, reason: "reduce result reset".to_string() },
                    out,
                );
            }
        }
    }

    // ------------------------------------------------------------------ dispatch --

    fn dispatch_message(&mut self, now: Time, from: NodeId, msg: Message, out: &mut Vec<Effect>) {
        match msg {
            // Directory plane: this node hosts the shard responsible for the object.
            Message::DirRegister { object, holder, status, size } => {
                self.metrics.directory_registrations += 1;
                let mut replies = Vec::new();
                self.shard.register(object, holder, status, size, &mut replies);
                self.forward_shard_replies(replies, out);
            }
            Message::DirPutInline { object, holder, payload } => {
                self.metrics.directory_registrations += 1;
                let mut replies = Vec::new();
                self.shard.put_inline(object, holder, payload, &mut replies);
                self.forward_shard_replies(replies, out);
            }
            Message::DirUnregister { object, holder } => {
                self.shard.unregister(object, holder);
            }
            Message::DirQuery { object, requester, query_id, exclude } => {
                self.metrics.directory_queries_served += 1;
                let mut replies = Vec::new();
                self.shard.query(object, requester, query_id, exclude, &mut replies);
                self.forward_shard_replies(replies, out);
            }
            Message::DirSubscribe { object, subscriber } => {
                let mut replies = Vec::new();
                self.shard.subscribe(object, subscriber, &mut replies);
                self.forward_shard_replies(replies, out);
            }
            Message::DirTransferDone { object, receiver, sender } => {
                self.shard.transfer_done(object, receiver, sender);
            }
            Message::DirDelete { object } => {
                let mut replies = Vec::new();
                self.shard.delete(object, &mut replies);
                self.forward_shard_replies(replies, out);
            }
            // Directory replies and publications addressed to this node.
            Message::DirQueryReply { object, query_id, result } => {
                self.handle_query_reply(now, object, query_id, result, out);
            }
            Message::DirPublish { object, holder, status, size } => {
                self.handle_dir_publish(now, object, holder, status, size, out);
            }
            Message::StoreRelease { object } => {
                self.handle_store_release(object, out);
            }
            // Data plane.
            Message::PullRequest { object, requester, offset } => {
                self.handle_pull_request(now, object, requester, offset, out);
            }
            Message::PullCancel { object, requester } => {
                if let Some(transfers) = self.outgoing.get_mut(&object) {
                    transfers.retain(|t| t.to != requester);
                }
            }
            Message::PushBlock { object, offset, total_size, payload, complete: _ } => {
                self.handle_push_block(now, from, object, offset, total_size, payload, out);
            }
            Message::PullError { object, reason: _ } => {
                self.handle_pull_error(now, from, object, out);
            }
            // Reduce plane.
            Message::ReduceInstruction(instr) => {
                self.handle_reduce_instruction(now, instr, out);
            }
            Message::ReduceBlock {
                target,
                to_slot,
                from_slot,
                parent_epoch,
                block_index,
                object_size,
                payload,
            } => {
                self.handle_reduce_block(
                    now,
                    target,
                    to_slot,
                    from_slot,
                    parent_epoch,
                    block_index,
                    object_size,
                    payload,
                    out,
                );
            }
            Message::ReduceDone { target, root: _ } => {
                self.handle_reduce_done(target, out);
            }
        }
    }

    fn forward_shard_replies(&mut self, replies: Vec<(NodeId, Message)>, out: &mut Vec<Effect>) {
        for (to, msg) in replies {
            self.send(to, msg, out);
        }
    }

    /// Send a message, short-circuiting messages addressed to this node through an
    /// internal queue (drained at the end of every public handler) so drivers never
    /// have to route loopback traffic.
    fn send(&mut self, to: NodeId, msg: Message, out: &mut Vec<Effect>) {
        if to == self.id {
            self.self_queue.push_back(msg);
        } else {
            self.metrics.messages_sent += 1;
            out.push(Effect::Send { to, msg });
        }
    }

    fn drain_self_queue(&mut self, now: Time, out: &mut Vec<Effect>) {
        // Bounded by a generous limit to surface accidental ping-pong loops in tests
        // instead of hanging.
        let mut budget = 100_000;
        while let Some(msg) = self.self_queue.pop_front() {
            self.dispatch_message(now, self.id, msg, out);
            budget -= 1;
            if budget == 0 {
                panic!("self-message loop did not terminate");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Effect;

    fn setup(n: usize) -> (Vec<ObjectStoreNode>, ClusterView) {
        let cluster = ClusterView::of_size(n);
        let cfg = HopliteConfig::small_for_tests();
        let nodes = cluster
            .nodes
            .iter()
            .map(|&id| {
                ObjectStoreNode::new(id, cfg.clone(), cluster.clone(), NodeOptions::default())
            })
            .collect();
        (nodes, cluster)
    }

    /// Deliver effects until quiescence, returning all client replies. Batches are
    /// processed FIFO, preserving the per-link ordering that real transports (one TCP
    /// connection per peer) and the simulator provide.
    fn run_to_quiescence(
        nodes: &mut Vec<ObjectStoreNode>,
        effects: Vec<(NodeId, Vec<Effect>)>,
    ) -> Vec<(NodeId, OpId, ClientReply)> {
        let mut effects: std::collections::VecDeque<(NodeId, Vec<Effect>)> =
            effects.into_iter().collect();
        let mut replies = Vec::new();
        let mut steps = 0;
        while let Some((from, batch)) = effects.pop_front() {
            for effect in batch {
                match effect {
                    Effect::Send { to, msg } => {
                        let mut out = Vec::new();
                        nodes[to.index()].handle_message(Time::ZERO, from, msg, &mut out);
                        effects.push_back((to, out));
                    }
                    Effect::Reply { op, reply } => replies.push((from, op, reply)),
                    Effect::SetTimer { .. } | Effect::LocalProgress { .. } => {}
                }
            }
            steps += 1;
            assert!(steps < 100_000, "message storm");
        }
        replies
    }

    #[test]
    fn put_then_remote_get_delivers_bytes() {
        let (mut nodes, _) = setup(4);
        let object = ObjectId::from_name("payload");
        let data: Vec<u8> = (0..5000u32).map(|i| (i % 251) as u8).collect();

        let mut out = Vec::new();
        nodes[0].handle_client(
            Time::ZERO,
            OpId(1),
            ClientOp::Put { object, payload: Payload::from_vec(data.clone()) },
            &mut out,
        );
        let replies = run_to_quiescence(&mut nodes, vec![(NodeId(0), out)]);
        assert!(replies
            .iter()
            .any(|(_, op, r)| *op == OpId(1) && matches!(r, ClientReply::PutDone { .. })));

        let mut out = Vec::new();
        nodes[2].handle_client(Time::ZERO, OpId(2), ClientOp::Get { object }, &mut out);
        let replies = run_to_quiescence(&mut nodes, vec![(NodeId(2), out)]);
        let got = replies
            .iter()
            .find_map(|(_, op, r)| match (op, r) {
                (OpId(2), ClientReply::GetDone { payload, .. }) => Some(payload.clone()),
                _ => None,
            })
            .expect("get completed");
        assert_eq!(got.as_bytes().unwrap().as_ref(), data.as_slice());
        assert!(nodes[2].has_complete(object));
    }

    #[test]
    fn small_objects_use_inline_fast_path() {
        let (mut nodes, _) = setup(3);
        let object = ObjectId::from_name("tiny");
        let mut out = Vec::new();
        nodes[1].handle_client(
            Time::ZERO,
            OpId(1),
            ClientOp::Put { object, payload: Payload::from_vec(vec![42; 16]) },
            &mut out,
        );
        run_to_quiescence(&mut nodes, vec![(NodeId(1), out)]);
        let mut out = Vec::new();
        nodes[0].handle_client(Time::ZERO, OpId(2), ClientOp::Get { object }, &mut out);
        let replies = run_to_quiescence(&mut nodes, vec![(NodeId(0), out)]);
        assert!(replies.iter().any(|(_, _, r)| matches!(r, ClientReply::GetDone { .. })));
        // The fast path serves from the directory: the creator never received a pull.
        assert_eq!(nodes[1].metrics().pulls_served, 0);
    }

    #[test]
    fn broadcast_to_many_receivers_completes_everywhere() {
        let (mut nodes, _) = setup(8);
        let object = ObjectId::from_name("model");
        let data: Vec<u8> = (0..10_000u32).map(|i| (i * 7 % 256) as u8).collect();
        let mut out = Vec::new();
        nodes[0].handle_client(
            Time::ZERO,
            OpId(1),
            ClientOp::Put { object, payload: Payload::from_vec(data.clone()) },
            &mut out,
        );
        run_to_quiescence(&mut nodes, vec![(NodeId(0), out)]);

        let mut initial = Vec::new();
        for r in 1..8u32 {
            let mut out = Vec::new();
            nodes[r as usize].handle_client(
                Time::ZERO,
                OpId(100 + r as u64),
                ClientOp::Get { object },
                &mut out,
            );
            initial.push((NodeId(r), out));
        }
        let replies = run_to_quiescence(&mut nodes, initial);
        let done = replies
            .iter()
            .filter(|(_, _, r)| matches!(r, ClientReply::GetDone { .. }))
            .count();
        assert_eq!(done, 7);
        for r in 1..8 {
            assert!(nodes[r].has_complete(object));
            assert_eq!(
                nodes[r].store().total_size(object),
                Some(data.len() as u64),
                "receiver {r} has full object"
            );
        }
    }

    #[test]
    fn reduce_sums_across_nodes() {
        let (mut nodes, _) = setup(5);
        let sources: Vec<ObjectId> =
            (0..4).map(|i| ObjectId::from_name(&format!("grad-{i}"))).collect();
        // Each of nodes 1..=4 puts a gradient of 600 floats.
        let mut initial = Vec::new();
        for (i, &src) in sources.iter().enumerate() {
            let values: Vec<f32> = (0..600).map(|j| (i as f32) + (j as f32) * 0.001).collect();
            let mut out = Vec::new();
            nodes[i + 1].handle_client(
                Time::ZERO,
                OpId(10 + i as u64),
                ClientOp::Put { object: src, payload: Payload::from_f32s(&values) },
                &mut out,
            );
            initial.push((NodeId((i + 1) as u32), out));
        }
        run_to_quiescence(&mut nodes, initial);

        let target = ObjectId::from_name("sum");
        let mut out = Vec::new();
        nodes[0].handle_client(
            Time::ZERO,
            OpId(1),
            ClientOp::Reduce {
                target,
                sources: sources.clone(),
                num_objects: None,
                spec: ReduceSpec::sum_f32(),
                degree: None,
            },
            &mut out,
        );
        run_to_quiescence(&mut nodes, vec![(NodeId(0), out)]);

        let mut out = Vec::new();
        nodes[0].handle_client(Time::ZERO, OpId(2), ClientOp::Get { object: target }, &mut out);
        let replies = run_to_quiescence(&mut nodes, vec![(NodeId(0), out)]);
        let payload = replies
            .iter()
            .find_map(|(_, op, r)| match (op, r) {
                (OpId(2), ClientReply::GetDone { payload, .. }) => Some(payload.clone()),
                _ => None,
            })
            .expect("reduce result fetched");
        let values = payload.to_f32s();
        assert_eq!(values.len(), 600);
        for (j, v) in values.iter().enumerate() {
            let expected = (0..4).map(|i| i as f32 + j as f32 * 0.001).sum::<f32>();
            assert!((v - expected).abs() < 1e-3, "element {j}: {v} vs {expected}");
        }
    }

    #[test]
    fn delete_removes_all_copies() {
        let (mut nodes, _) = setup(3);
        let object = ObjectId::from_name("temp");
        let mut out = Vec::new();
        nodes[0].handle_client(
            Time::ZERO,
            OpId(1),
            ClientOp::Put { object, payload: Payload::zeros(4000) },
            &mut out,
        );
        run_to_quiescence(&mut nodes, vec![(NodeId(0), out)]);
        let mut out = Vec::new();
        nodes[1].handle_client(Time::ZERO, OpId(2), ClientOp::Get { object }, &mut out);
        run_to_quiescence(&mut nodes, vec![(NodeId(1), out)]);
        assert!(nodes[1].has_complete(object));

        let mut out = Vec::new();
        nodes[2].handle_client(Time::ZERO, OpId(3), ClientOp::Delete { object }, &mut out);
        run_to_quiescence(&mut nodes, vec![(NodeId(2), out)]);
        assert!(!nodes[0].store().contains(object));
        assert!(!nodes[1].store().contains(object));
    }

    #[test]
    fn get_before_put_parks_until_data_exists() {
        let (mut nodes, _) = setup(2);
        let object = ObjectId::from_name("future");
        let mut out = Vec::new();
        nodes[1].handle_client(Time::ZERO, OpId(1), ClientOp::Get { object }, &mut out);
        let replies = run_to_quiescence(&mut nodes, vec![(NodeId(1), out)]);
        assert!(replies.is_empty(), "nothing to reply yet");

        let mut out = Vec::new();
        nodes[0].handle_client(
            Time::ZERO,
            OpId(2),
            ClientOp::Put { object, payload: Payload::zeros(5000) },
            &mut out,
        );
        let replies = run_to_quiescence(&mut nodes, vec![(NodeId(0), out)]);
        assert!(replies
            .iter()
            .any(|(node, op, r)| *node == NodeId(1)
                && *op == OpId(1)
                && matches!(r, ClientReply::GetDone { .. })));
    }

    #[test]
    fn reduce_subset_uses_earliest_arrivals() {
        let (mut nodes, _) = setup(6);
        let sources: Vec<ObjectId> =
            (0..5).map(|i| ObjectId::from_name(&format!("s{i}"))).collect();
        let target = ObjectId::from_name("partial-sum");
        // Start the reduce before any source exists.
        let mut out = Vec::new();
        nodes[0].handle_client(
            Time::ZERO,
            OpId(1),
            ClientOp::Reduce {
                target,
                sources: sources.clone(),
                num_objects: Some(3),
                spec: ReduceSpec::sum_f32(),
                degree: Some(2),
            },
            &mut out,
        );
        run_to_quiescence(&mut nodes, vec![(NodeId(0), out)]);

        // Only three sources ever appear (on nodes 1..=3), each a constant vector.
        let mut initial = Vec::new();
        for i in 0..3usize {
            let values = vec![(i + 1) as f32; 300];
            let mut out = Vec::new();
            nodes[i + 1].handle_client(
                Time::ZERO,
                OpId(10 + i as u64),
                ClientOp::Put { object: sources[i], payload: Payload::from_f32s(&values) },
                &mut out,
            );
            initial.push((NodeId((i + 1) as u32), out));
        }
        run_to_quiescence(&mut nodes, initial);

        let mut out = Vec::new();
        nodes[0].handle_client(Time::ZERO, OpId(2), ClientOp::Get { object: target }, &mut out);
        let replies = run_to_quiescence(&mut nodes, vec![(NodeId(0), out)]);
        let payload = replies
            .iter()
            .find_map(|(_, op, r)| match (op, r) {
                (OpId(2), ClientReply::GetDone { payload, .. }) => Some(payload.clone()),
                _ => None,
            })
            .expect("subset reduce completed with 3 of 5 sources");
        for v in payload.to_f32s() {
            assert!((v - 6.0).abs() < 1e-4, "1 + 2 + 3 = 6, got {v}");
        }
    }
}
