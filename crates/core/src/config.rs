//! Configuration of a Hoplite deployment.

use crate::detector::DetectorConfig;
use crate::time::Duration;

/// Size thresholds and protocol parameters of a Hoplite node.
///
/// Defaults mirror the paper's implementation: 4 MiB pipelining blocks, a 64 KiB
/// small-object threshold under which objects are cached inline in the object
/// directory, and reduce degree chosen from `{1, 2, n}` (§4).
#[derive(Clone, Debug, PartialEq)]
pub struct HopliteConfig {
    /// Pipelining block size in bytes. Transfers, reductions and worker↔store copies
    /// all operate at this granularity (the paper uses 4 MiB).
    pub block_size: u64,
    /// Objects at or below this size are cached inline in the directory shard and
    /// served directly from location-query replies (§3.2, 64 KiB in the paper).
    pub inline_threshold: u64,
    /// Candidate reduce-tree degrees evaluated by the degree model. `0` stands for
    /// `n` (a star rooted at the receiver).
    pub reduce_degrees: Vec<usize>,
    /// Estimated one-way network latency used by the reduce degree model (the paper
    /// measures this empirically at runtime; we expose it as a calibrated estimate
    /// that drivers may overwrite with live measurements).
    pub estimated_latency: Duration,
    /// Estimated per-node network bandwidth in bytes per second used by the reduce
    /// degree model.
    pub estimated_bandwidth: f64,
    /// Local store capacity in bytes; additional unpinned copies are evicted LRU when
    /// the store fills up (§6 "Garbage collection").
    pub store_capacity: u64,
    /// Memory-copy bandwidth between a worker and its local store in bytes per second
    /// (used by the simulator to model the extra copies that pipelining hides, §3.3).
    pub memcpy_bandwidth: f64,
    /// How long a node waits for a pull to make progress before it suspects the sender
    /// has failed and re-queries the directory. Real deployments detect failures via
    /// socket liveness (the paper measures 0.74 s detection latency); the simulator
    /// injects explicit failure events and uses this as an upper bound.
    pub pull_timeout: Duration,
    /// Number of directory shards. Defaults to one shard per node (shard `i` is hosted
    /// by node `i % num_nodes`).
    pub directory_shards: Option<usize>,
    /// Number of replicas (primary + backups) of every directory shard (§3.5: the
    /// paper replicates the object directory so metadata survives node failures).
    /// Clamped to the cluster size at placement time; `1` disables replication.
    pub directory_replication: usize,
    /// With `directory_replication >= 3`, replicate each shard along a chain
    /// (primary → b1 → b2 → …, cumulative acks flowing back from the tail) instead of
    /// star fan-out: the primary's replication egress is one stream regardless of `r`,
    /// at the cost of one extra relay hop of confirm latency per chain position.
    /// Ignored for `directory_replication <= 2`, where chain and star coincide.
    pub directory_chain_replication: bool,
    /// Upper bound, in bytes, on the state carried by one `DirSnapshotChunk` resync
    /// frame. Replica resync streams the shard as a cursor-driven sequence of chunks
    /// no larger than this, interleaved with live op shipments, instead of one
    /// O(objects) `DirSnapshot` burst. A chunk may exceed the bound only when a
    /// single entry alone is larger than it (entries are indivisible).
    pub snapshot_chunk_bytes: u64,
    /// Byte budget for inline small-object payloads cached in each directory shard.
    /// When the budget is exceeded the least-recently-used inline payloads are
    /// dropped (the location records stay; the object is then served via the normal
    /// pull path). Entries whose only copy is the inline payload are never evicted.
    pub directory_inline_cache_bytes: u64,
    /// How many *acked* (already trimmed) replication-log ops each replica retains
    /// for delta resync: a replica whose gap fits inside the retained suffix replays
    /// ops instead of requesting a state snapshot at all.
    pub directory_log_retention: usize,
    /// How long a directory lease (a query answer pointing a receiver at a sender)
    /// may go unresolved before bulk expiry reclaims it. Expiry runs on a
    /// two-generation timer wheel, so actual lifetime is between one and two TTLs.
    pub directory_lease_ttl: Duration,
    /// Optional idle TTL for unpinned complete objects in the local store: objects
    /// untouched for two GC ticks (the tick period is `directory_lease_ttl`) are
    /// evicted. `None` disables TTL GC; capacity-pressure LRU eviction still runs.
    pub store_gc_ttl: Option<Duration>,
    /// SWIM-style gossip failure detector. `None` (the default) disables it:
    /// liveness then comes only from driver verdicts (`peer-failed` notices, the
    /// simulator's fault schedule), exactly as before. `Some` arms a per-node
    /// probe/suspect/refute loop — see [`crate::detector`].
    pub detector: Option<DetectorConfig>,
}

impl Default for HopliteConfig {
    fn default() -> Self {
        HopliteConfig {
            block_size: 4 * 1024 * 1024,
            inline_threshold: 64 * 1024,
            reduce_degrees: vec![1, 2, 0],
            estimated_latency: Duration::from_micros(170),
            estimated_bandwidth: 1.25e9, // 10 Gbps
            store_capacity: 64 * 1024 * 1024 * 1024,
            memcpy_bandwidth: 5.0e9,
            pull_timeout: Duration::from_millis(750),
            directory_shards: None,
            directory_replication: 2,
            directory_chain_replication: true,
            snapshot_chunk_bytes: 256 * 1024,
            directory_inline_cache_bytes: 64 * 1024 * 1024,
            directory_log_retention: 1024,
            directory_lease_ttl: Duration::from_secs(30),
            store_gc_ttl: None,
            detector: None,
        }
    }
}

impl HopliteConfig {
    /// Configuration matching the paper's testbed (16 × m5.4xlarge, 10 Gbps, Linux).
    pub fn paper_testbed() -> Self {
        HopliteConfig::default()
    }

    /// Configuration for fast unit tests: tiny blocks so pipelining paths are exercised
    /// with small objects, and a small store to exercise eviction.
    pub fn small_for_tests() -> Self {
        HopliteConfig {
            block_size: 1024,
            inline_threshold: 64,
            store_capacity: 64 * 1024 * 1024,
            // Tiny chunks so even small-shard resyncs exercise the multi-chunk path.
            snapshot_chunk_bytes: 1024,
            ..HopliteConfig::default()
        }
    }

    /// Number of whole blocks needed to hold `size` bytes.
    pub fn num_blocks(&self, size: u64) -> u64 {
        if size == 0 {
            0
        } else {
            size.div_ceil(self.block_size)
        }
    }

    /// Size of block `index` of an object of `size` bytes (the final block may be
    /// short).
    pub fn block_len(&self, size: u64, index: u64) -> u64 {
        let start = index * self.block_size;
        debug_assert!(start < size || size == 0);
        (size - start).min(self.block_size)
    }

    /// Whether an object of `size` bytes takes the small-object fast path.
    pub fn is_inline(&self, size: u64) -> bool {
        size <= self.inline_threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let cfg = HopliteConfig::default();
        assert_eq!(cfg.block_size, 4 * 1024 * 1024);
        assert_eq!(cfg.inline_threshold, 64 * 1024);
        assert_eq!(cfg.reduce_degrees, vec![1, 2, 0]);
    }

    #[test]
    fn block_math() {
        let cfg = HopliteConfig { block_size: 100, ..HopliteConfig::default() };
        assert_eq!(cfg.num_blocks(0), 0);
        assert_eq!(cfg.num_blocks(1), 1);
        assert_eq!(cfg.num_blocks(100), 1);
        assert_eq!(cfg.num_blocks(101), 2);
        assert_eq!(cfg.block_len(250, 0), 100);
        assert_eq!(cfg.block_len(250, 2), 50);
    }

    #[test]
    fn inline_threshold() {
        let cfg = HopliteConfig::default();
        assert!(cfg.is_inline(1024));
        assert!(cfg.is_inline(64 * 1024));
        assert!(!cfg.is_inline(64 * 1024 + 1));
    }
}
