//! Randomized property tests for the core data structures and invariants.
//!
//! The build environment is offline, so instead of `proptest` these use a small
//! deterministic xorshift generator: each property is checked against a few hundred
//! pseudo-random cases with a fixed seed, which keeps failures reproducible while
//! covering the same invariants the original property suite asserted.

use hoplite_core::buffer::{Payload, ProgressBuffer};
use hoplite_core::object::{NodeId, ObjectId};
use hoplite_core::reduce::{DegreeModel, ReduceInput, ReduceSpec, ReduceTreePlan, TreeShape};
use hoplite_core::time::Duration;

/// Deterministic xorshift64* generator.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `[lo, hi)`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(hi > lo);
        lo + self.next_u64() % (hi - lo)
    }

    fn usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range(lo as u64, hi as u64) as usize
    }

    fn f32(&mut self, lo: f32, hi: f32) -> f32 {
        let unit = (self.next_u64() >> 11) as f32 / (1u64 << 53) as f32;
        lo + unit * (hi - lo)
    }

    fn bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| self.next_u64() as u8).collect()
    }
}

/// The tree shape is a well-formed tree for every (n, d): exactly one root, every
/// other slot has a parent, children counts respect the degree, and parent/child
/// links agree.
#[test]
fn tree_shape_is_well_formed() {
    let mut rng = Rng::new(0xA11CE);
    for _ in 0..300 {
        let n = rng.usize(1, 200);
        let d = rng.usize(1, 12);
        let shape = TreeShape::new(n, d);
        assert_eq!(shape.len(), n);
        let mut roots = 0;
        let mut child_edges = 0;
        for slot in shape.slots() {
            if slot.parent.is_none() {
                roots += 1;
            }
            assert!(slot.children.len() <= d, "n={n} d={d}: degree exceeded");
            child_edges += slot.children.len();
            for &c in &slot.children {
                assert_eq!(shape.slot(c).parent, Some(slot.index), "n={n} d={d}");
            }
        }
        assert_eq!(roots, 1, "n={n} d={d}: exactly one root");
        assert_eq!(child_edges, n - 1, "n={n} d={d}: every non-root has a parent");
        for slot in shape.slots() {
            assert!(shape.ancestors(slot.index).len() < n, "n={n} d={d}: bounded ancestry");
        }
    }
}

/// Chain trees (d = 1) have height n - 1; stars (d >= n) have height 1.
#[test]
fn tree_height_extremes() {
    let mut rng = Rng::new(0xB0B);
    for _ in 0..100 {
        let n = rng.usize(2, 100);
        assert_eq!(TreeShape::new(n, 1).height(), n - 1);
        assert_eq!(TreeShape::new(n, n).height(), 1);
    }
}

/// Offering objects in any order assigns each object at most one slot, fills slots
/// in in-order rank order, and never assigns more than `n` objects.
#[test]
fn plan_assignment_is_injective() {
    let mut rng = Rng::new(0xC0FFEE);
    for _ in 0..200 {
        let n = rng.usize(1, 40);
        let extra = rng.usize(0, 10);
        let d = rng.usize(1, 5);
        let mut plan = ReduceTreePlan::new(n, d);
        for i in 0..n + extra {
            plan.offer_input(ReduceInput {
                object: ObjectId::from_name(&format!("obj{i}")),
                node: NodeId(i as u32),
            });
        }
        assert!(plan.fully_assigned(), "n={n} extra={extra} d={d}");
        let mut seen = std::collections::HashSet::new();
        for slot in 0..n {
            let input = plan.assignment(slot).unwrap();
            assert!(seen.insert(input.object), "object assigned twice (n={n} d={d})");
            // Slot k holds the k-th arrival.
            assert_eq!(input.node, NodeId(slot as u32));
        }
    }
}

/// After any sequence of failures and re-offers, no failed node owns a slot and no
/// object is assigned twice.
#[test]
fn plan_failures_never_double_assign() {
    let mut rng = Rng::new(0xDEAD);
    for _ in 0..200 {
        let n = rng.usize(2, 20);
        let d = rng.usize(1, 4);
        let num_failures = rng.usize(0, 6);
        let mut plan = ReduceTreePlan::new(n, d);
        for i in 0..n {
            plan.offer_input(ReduceInput {
                object: ObjectId::from_name(&format!("src{i}")),
                node: NodeId(i as u32),
            });
        }
        let mut failed = std::collections::HashSet::new();
        for round in 0..num_failures {
            let f = rng.range(0, 20) as u32;
            plan.on_node_failed(NodeId(f));
            failed.insert(f);
            // A replacement object appears on a fresh node.
            plan.offer_input(ReduceInput {
                object: ObjectId::from_name(&format!("replacement{round}")),
                node: NodeId(100 + round as u32),
            });
        }
        let mut seen = std::collections::HashSet::new();
        for slot in 0..n {
            if let Some(input) = plan.assignment(slot) {
                assert!(
                    !failed.contains(&input.node.0),
                    "failed node still assigned (n={n} d={d})"
                );
                assert!(seen.insert(input.object), "double assignment (n={n} d={d})");
            }
        }
    }
}

/// The degree model never returns a degree outside [1, n] and its prediction is
/// positive and finite.
#[test]
fn degree_model_is_bounded() {
    let mut rng = Rng::new(0xFACE);
    let model = DegreeModel { latency: Duration::from_micros(100), bandwidth: 1.25e9 };
    for _ in 0..500 {
        let n = rng.usize(1, 128);
        let size = rng.range(1, 1 << 30);
        let d = model.choose(&[1, 2, 0], n, size);
        assert!(d >= 1 && d <= n.max(1), "n={n} size={size}: chose {d}");
        let t = model.predict(d, n, size);
        assert!(t.as_secs_f64() > 0.0, "n={n} size={size}");
    }
}

/// Appending arbitrary in-order chunks to a progress buffer reconstructs the
/// original bytes, regardless of how the object is split.
#[test]
fn progress_buffer_reassembles_any_split() {
    let mut rng = Rng::new(0xFEED);
    for _ in 0..200 {
        let len = rng.usize(1, 2000);
        let data = rng.bytes(len);
        let total = data.len() as u64;
        let mut buf = ProgressBuffer::new(total, false);
        let mut offset = 0usize;
        while offset < data.len() {
            let len = rng.usize(1, 50).min(data.len() - offset);
            let chunk = Payload::from_vec(data[offset..offset + len].to_vec());
            assert!(buf.append_at(offset as u64, &chunk));
            offset += len;
        }
        assert!(buf.is_complete());
        let reassembled = buf.to_payload().unwrap();
        assert_eq!(reassembled.as_bytes().unwrap().as_ref(), data.as_slice());
    }
}

/// Out-of-order (gapped) appends are always rejected and leave the watermark
/// untouched.
#[test]
fn progress_buffer_rejects_gaps() {
    let mut rng = Rng::new(0x9A9);
    for _ in 0..300 {
        let gap = rng.range(1, 1000);
        let len = rng.range(1, 100);
        let mut buf = ProgressBuffer::new(10_000, false);
        let before = buf.watermark();
        assert!(!buf.append_at(before + gap, &Payload::zeros(len as usize)));
        assert_eq!(buf.watermark(), before);
    }
}

/// Element-wise sum is commutative for arbitrary f32 vectors (no NaNs).
#[test]
fn reduce_sum_commutes() {
    let mut rng = Rng::new(0x5EED);
    let spec = ReduceSpec::sum_f32();
    let target = ObjectId::from_name("prop");
    for _ in 0..200 {
        let len = rng.usize(1, 256);
        let a: Vec<f32> = (0..len).map(|_| rng.f32(-1e6, 1e6)).collect();
        let b: Vec<f32> = (0..len).map(|_| rng.f32(-1e6, 1e6)).collect();
        let ab = spec
            .combine(target, &Payload::from_f32s(&a), &Payload::from_f32s(&b))
            .unwrap()
            .to_f32s();
        let ba = spec
            .combine(target, &Payload::from_f32s(&b), &Payload::from_f32s(&a))
            .unwrap()
            .to_f32s();
        assert_eq!(ab, ba);
    }
}

/// Any segmentation of a byte string is logically equal to the contiguous payload,
/// and slicing the segmented view agrees with slicing the flat bytes — for every
/// random split and every random sub-range.
#[test]
fn segmented_payload_views_agree_with_contiguous() {
    use bytes::Bytes;
    let mut rng = Rng::new(0x5E6);
    for _ in 0..200 {
        let len = rng.usize(1, 1500);
        let data = rng.bytes(len);
        // Random segmentation (possibly including empty segments, which normalize
        // away).
        let mut segments = Vec::new();
        let mut at = 0usize;
        while at < len {
            let take = rng.usize(0, 64).min(len - at);
            segments.push(Bytes::from(data[at..at + take].to_vec()));
            at += take;
        }
        let segmented = Payload::from_segments(segments);
        let flat = Payload::from_vec(data.clone());
        assert_eq!(segmented, flat);
        assert_eq!(segmented.len(), len as u64);
        let off = rng.range(0, len as u64 + 10);
        let take = rng.range(0, len as u64 + 10);
        assert_eq!(segmented.slice(off, take), flat.slice(off, take));
        assert_eq!(segmented.to_owned_vec().unwrap(), data);
    }
}

/// Reading arbitrary in-watermark ranges out of a progress buffer fed by arbitrary
/// splits returns exactly the original bytes — whether the read lands inside one
/// segment (contiguous view) or spans several (zero-copy segmented view).
#[test]
fn progress_buffer_reads_agree_with_source_bytes() {
    let mut rng = Rng::new(0xB10C);
    for _ in 0..100 {
        let len = rng.usize(2, 1200);
        let data = rng.bytes(len);
        let mut buf = ProgressBuffer::new(len as u64, false);
        let mut offset = 0usize;
        while offset < len {
            let take = rng.usize(1, 80).min(len - offset);
            assert!(buf.append_at(
                offset as u64,
                &Payload::from_vec(data[offset..offset + take].to_vec())
            ));
            offset += take;
        }
        for _ in 0..20 {
            let off = rng.usize(0, len);
            let take = rng.usize(0, len);
            let end = (off + take).min(len);
            let got = buf.read(off as u64, take as u64).expect("below watermark");
            assert_eq!(got, Payload::from_vec(data[off..end].to_vec()));
        }
    }
}

/// In-place accumulation over arbitrarily-segmented blocks equals the whole-payload
/// combine, for random data and random element-straddling splits.
#[test]
fn combine_into_segmented_agrees_with_whole_payload_combine() {
    use bytes::Bytes;
    let mut rng = Rng::new(0xACC);
    let spec = ReduceSpec::sum_f32();
    let target = ObjectId::from_name("prop-acc");
    for _ in 0..200 {
        let elems = rng.usize(1, 128);
        let a: Vec<f32> = (0..elems).map(|_| rng.f32(-1e4, 1e4)).collect();
        let b: Vec<f32> = (0..elems).map(|_| rng.f32(-1e4, 1e4)).collect();
        let pa = Payload::from_f32s(&a);
        let pb = Payload::from_f32s(&b);
        let want = spec.combine(target, &pa, &pb).unwrap();
        // Segment `b` at random byte boundaries, elements straddling freely.
        let bb = pb.to_owned_vec().unwrap();
        let mut segments = Vec::new();
        let mut at = 0usize;
        while at < bb.len() {
            let take = rng.usize(1, 11).min(bb.len() - at);
            segments.push(Bytes::from(bb[at..at + take].to_vec()));
            at += take;
        }
        let mut acc = pa.to_owned_vec().unwrap();
        spec.combine_into(target, &mut acc, &Payload::from_segments(segments)).unwrap();
        assert_eq!(Payload::from_vec(acc), want);
    }
}

/// Payload slicing never exceeds the underlying length and concatenation preserves
/// total length.
#[test]
fn payload_slice_concat_lengths() {
    let mut rng = Rng::new(0x51105);
    for _ in 0..500 {
        let len = rng.range(0, 4096);
        let off = rng.range(0, 5000);
        let take = rng.range(0, 5000);
        let p = Payload::synthetic(len);
        let s = p.slice(off, take);
        assert!(s.len() <= len);
        assert_eq!(p.concat(&s).len(), len + s.len());
    }
}
