//! Property-based tests (proptest) for the core data structures and invariants.

use hoplite_core::buffer::{Payload, ProgressBuffer};
use hoplite_core::object::{NodeId, ObjectId};
use hoplite_core::reduce::{DegreeModel, ReduceInput, ReduceSpec, ReduceTreePlan, TreeShape};
use hoplite_core::time::Duration;
use proptest::prelude::*;

proptest! {
    /// The tree shape is a well-formed tree for every (n, d): exactly one root, every
    /// other slot has a parent, children counts respect the degree, and parent/child
    /// links agree.
    #[test]
    fn tree_shape_is_well_formed(n in 1usize..200, d in 1usize..12) {
        let shape = TreeShape::new(n, d);
        prop_assert_eq!(shape.len(), n);
        let mut roots = 0;
        let mut child_edges = 0;
        for slot in shape.slots() {
            if slot.parent.is_none() {
                roots += 1;
            }
            prop_assert!(slot.children.len() <= d);
            child_edges += slot.children.len();
            for &c in &slot.children {
                prop_assert_eq!(shape.slot(c).parent, Some(slot.index));
            }
        }
        prop_assert_eq!(roots, 1);
        prop_assert_eq!(child_edges, n - 1);
        // Every slot reaches the root, and ancestor chains never exceed n.
        for slot in shape.slots() {
            prop_assert!(shape.ancestors(slot.index).len() < n);
        }
    }

    /// Chain trees (d = 1) have height n - 1; stars (d >= n) have height 1.
    #[test]
    fn tree_height_extremes(n in 2usize..100) {
        prop_assert_eq!(TreeShape::new(n, 1).height(), n - 1);
        prop_assert_eq!(TreeShape::new(n, n).height(), 1);
    }

    /// Offering objects in any order assigns each object at most one slot, fills slots
    /// in in-order rank order, and never assigns more than `n` objects.
    #[test]
    fn plan_assignment_is_injective(n in 1usize..40, extra in 0usize..10, d in 1usize..5) {
        let mut plan = ReduceTreePlan::new(n, d);
        let total = n + extra;
        for i in 0..total {
            plan.offer_input(ReduceInput {
                object: ObjectId::from_name(&format!("obj{i}")),
                node: NodeId(i as u32),
            });
        }
        prop_assert!(plan.fully_assigned());
        let mut seen = std::collections::HashSet::new();
        for slot in 0..n {
            let input = plan.assignment(slot).unwrap();
            prop_assert!(seen.insert(input.object), "object assigned twice");
            // Slot k holds the k-th arrival.
            prop_assert_eq!(input.node, NodeId(slot as u32));
        }
    }

    /// After any sequence of failures and re-offers, no failed node owns a slot and no
    /// object is assigned twice.
    #[test]
    fn plan_failures_never_double_assign(
        n in 2usize..20,
        d in 1usize..4,
        failures in proptest::collection::vec(0u32..20, 0..6),
    ) {
        let mut plan = ReduceTreePlan::new(n, d);
        for i in 0..n {
            plan.offer_input(ReduceInput {
                object: ObjectId::from_name(&format!("src{i}")),
                node: NodeId(i as u32),
            });
        }
        let mut failed = std::collections::HashSet::new();
        for (round, f) in failures.into_iter().enumerate() {
            plan.on_node_failed(NodeId(f));
            failed.insert(f);
            // A replacement object appears on a fresh node.
            plan.offer_input(ReduceInput {
                object: ObjectId::from_name(&format!("replacement{round}")),
                node: NodeId(100 + round as u32),
            });
        }
        let mut seen = std::collections::HashSet::new();
        for slot in 0..n {
            if let Some(input) = plan.assignment(slot) {
                prop_assert!(!failed.contains(&input.node.0), "failed node still assigned");
                prop_assert!(seen.insert(input.object));
            }
        }
    }

    /// The degree model never returns a degree outside [1, n] and its prediction is
    /// positive and finite.
    #[test]
    fn degree_model_is_bounded(n in 1usize..128, size in 1u64..(1 << 30)) {
        let model = DegreeModel { latency: Duration::from_micros(100), bandwidth: 1.25e9 };
        let d = model.choose(&[1, 2, 0], n, size);
        prop_assert!(d >= 1 && d <= n.max(1));
        let t = model.predict(d, n, size);
        prop_assert!(t.as_secs_f64() > 0.0);
    }

    /// Appending arbitrary in-order chunks to a progress buffer reconstructs the
    /// original bytes, regardless of how the object is split.
    #[test]
    fn progress_buffer_reassembles_any_split(
        data in proptest::collection::vec(any::<u8>(), 1..2000),
        cuts in proptest::collection::vec(1usize..50, 0..40),
    ) {
        let total = data.len() as u64;
        let mut buf = ProgressBuffer::new(total, false);
        let mut offset = 0usize;
        let mut cut_iter = cuts.into_iter();
        while offset < data.len() {
            let len = cut_iter.next().unwrap_or(17).min(data.len() - offset);
            let chunk = Payload::from_vec(data[offset..offset + len].to_vec());
            prop_assert!(buf.append_at(offset as u64, &chunk));
            offset += len;
        }
        prop_assert!(buf.is_complete());
        let reassembled = buf.to_payload().unwrap();
        prop_assert_eq!(reassembled.as_bytes().unwrap().as_ref(), data.as_slice());
    }

    /// Out-of-order (gapped) appends are always rejected and leave the watermark
    /// untouched.
    #[test]
    fn progress_buffer_rejects_gaps(gap in 1u64..1000, len in 1u64..100) {
        let mut buf = ProgressBuffer::new(10_000, false);
        let before = buf.watermark();
        prop_assert!(!buf.append_at(before + gap, &Payload::zeros(len as usize)));
        prop_assert_eq!(buf.watermark(), before);
    }

    /// Element-wise sum is commutative for arbitrary f32 vectors (no NaNs).
    #[test]
    fn reduce_sum_commutes(
        a in proptest::collection::vec(-1e6f32..1e6, 1..256),
        b_seed in proptest::collection::vec(-1e6f32..1e6, 1..256),
    ) {
        let len = a.len().min(b_seed.len());
        let a = &a[..len];
        let b = &b_seed[..len];
        let spec = ReduceSpec::sum_f32();
        let target = ObjectId::from_name("prop");
        let ab = spec
            .combine(target, &Payload::from_f32s(a), &Payload::from_f32s(b))
            .unwrap()
            .to_f32s();
        let ba = spec
            .combine(target, &Payload::from_f32s(b), &Payload::from_f32s(a))
            .unwrap()
            .to_f32s();
        prop_assert_eq!(ab, ba);
    }

    /// Payload slicing never exceeds the underlying length and concatenation preserves
    /// total length.
    #[test]
    fn payload_slice_concat_lengths(len in 0u64..4096, off in 0u64..5000, take in 0u64..5000) {
        let p = Payload::synthetic(len);
        let s = p.slice(off, take);
        prop_assert!(s.len() <= len);
        prop_assert_eq!(p.concat(&s).len(), len + s.len());
    }
}
